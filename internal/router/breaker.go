package router

import (
	"sync"
	"time"
)

// breaker is a per-backend circuit breaker over the data path. Health
// probes run on an interval; the breaker reacts at request speed in
// the gap between probes — a backend that starts refusing connections
// stops receiving traffic after Threshold consecutive failures, not
// after the next probe tick.
//
// States: closed (traffic flows), open (no traffic until Cooldown
// passes), half-open (exactly one trial request; success closes the
// breaker, failure re-opens it and restarts the cooldown).
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for deterministic tests

	mu       sync.Mutex
	state    breakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open trial is in flight
}

type breakerState int

const (
	stClosed breakerState = iota
	stOpen
	stHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stClosed:
		return "closed"
	case stOpen:
		return "open"
	case stHalfOpen:
		return "half-open"
	}
	return "unknown"
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a request may proceed. In the open state the
// first call after the cooldown flips to half-open and claims the
// single trial slot; concurrent callers keep getting false until the
// trial settles.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stClosed:
		return true
	case stOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = stHalfOpen
		b.probing = true
		return true
	case stHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// success reports a request that completed against the backend
// (including server-level pushback like 429 — the node is alive).
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = stClosed
	b.fails = 0
	b.probing = false
}

// failure reports a transport-level failure. The half-open trial
// failing re-opens immediately; closed-state failures accumulate to
// the threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stHalfOpen:
		b.state = stOpen
		b.openedAt = b.now()
		b.probing = false
	case stClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = stOpen
			b.openedAt = b.now()
			b.fails = 0
		}
	}
}

// reset force-closes the breaker; the health checker calls it when a
// backend passes its reinstatement probes so fresh traffic is not
// blocked by stale data-path history.
func (b *breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = stClosed
	b.fails = 0
	b.probing = false
}

// snapshot returns the current state name for metrics.
func (b *breaker) snapshot() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
