package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// node is one real dfmd backend on a real listener, with an abrupt
// kill: the listener and every live connection drop at once, which is
// what a crashed process looks like from the router.
type node struct {
	srv *server.Server
	hs  *http.Server
	url string
}

func startNode(t *testing.T) *node {
	t.Helper()
	s := server.New(server.Config{Workers: 2, Queue: 32, MaxWait: time.Hour})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln) //nolint:errcheck // closed by kill/cleanup
	n := &node{srv: s, hs: hs, url: "http://" + ln.Addr().String()}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		n.srv.Shutdown(ctx)
		n.hs.Close()
	})
	return n
}

func (n *node) kill() {
	n.hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
}

func (n *node) host() string { return strings.TrimPrefix(n.url, "http://") }

func quiet(string, ...any) {}

func urls(nodes []*node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.url
	}
	return out
}

// seedsOwnedBy returns `count` workload seeds whose affinity primary
// is the named backend, derived from the same ring the router builds
// — fully deterministic.
func seedsOwnedBy(t *testing.T, primary string, count, nodes, vnodes int) []int64 {
	t.Helper()
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
	}
	r := newRing(names, vnodes)
	var out []int64
	for s := int64(1); len(out) < count && s < 100000; s++ {
		key, err := server.KeyForRequest(server.JobRequest{Technique: "sraf", Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		if r.owner(key) == primary {
			out = append(out, s)
		}
	}
	if len(out) < count {
		t.Fatalf("found only %d/%d seeds owned by %s", len(out), count, primary)
	}
	return out
}

// TestAffinityPinsDuplicateWorkToOneNode: repeats of one request all
// land on the same backend and are answered from its cache — the
// global-cache-without-a-shared-store property.
func TestAffinityPinsDuplicateWorkToOneNode(t *testing.T) {
	nodes := []*node{startNode(t), startNode(t), startNode(t)}
	r, err := New(Config{Backends: urls(nodes), Policy: "affinity", Vnodes: 64,
		CheckInterval: time.Hour, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown(context.Background())

	req := server.JobRequest{Technique: "sraf", Seed: 7}
	ctx := context.Background()
	var first *Backend
	for i := 0; i < 8; i++ {
		st, b, err := r.Eval(ctx, req)
		if err != nil || st.State != server.StateDone {
			t.Fatalf("eval %d: %v %+v", i, err, st)
		}
		if first == nil {
			first = b
		} else if b != first {
			t.Fatalf("eval %d routed to %s, want sticky %s", i, b.Name, first.Name)
		}
		if i > 0 && !st.Cached {
			t.Fatalf("eval %d not served from the sticky node's cache: %+v", i, st)
		}
	}
	for _, b := range r.Backends() {
		if b != first && b.status().Picks != 0 {
			t.Fatalf("backend %s saw %d picks for a single-key stream", b.Name, b.status().Picks)
		}
	}
}

// TestInflightFailoverDeterministic is the deterministic mid-flight
// failure: every request's primary is black-holed at the transport
// (faultinject.Hang on /v1/jobs only, so health probes stay clean),
// the attempt times out, and the job must complete on a replica.
func TestInflightFailoverDeterministic(t *testing.T) {
	nodes := []*node{startNode(t), startNode(t), startNode(t)}
	const vnodes = 64
	seeds := seedsOwnedBy(t, "n0", 4, 3, vnodes)

	tr := faultinject.NewTransport(nil)
	tr.PlanHost(nodes[0].host(), faultinject.TransportFault{
		Kind: faultinject.Hang, Path: "/v1/jobs", Times: len(seeds),
	})
	// AttemptTimeout must beat the caller's patience but clear a real
	// evaluation, which runs ~150ms under -race.
	r, err := New(Config{Backends: urls(nodes), Policy: "affinity", Vnodes: vnodes,
		CheckInterval: time.Hour, AttemptTimeout: time.Second,
		RetryBase: time.Millisecond, MaxAttempts: 3, Seed: 42,
		Transport: tr, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown(context.Background())

	var wg sync.WaitGroup
	errs := make([]error, len(seeds))
	for i, s := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			st, b, err := r.Eval(ctx, server.JobRequest{Technique: "sraf", Seed: seed})
			if err == nil && st.State != server.StateDone {
				err = fmt.Errorf("settled as %+v", st)
			}
			if err == nil && b.Name == "n0" {
				err = fmt.Errorf("job completed on the black-holed primary")
			}
			errs[i] = err
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d did not complete on a replica: %v", i, err)
		}
	}
	st := r.Stats()
	if st.OK != int64(len(seeds)) || st.Failed != 0 {
		t.Fatalf("router ok/failed = %d/%d, want %d/0", st.OK, st.Failed, len(seeds))
	}
	if st.Failovers != int64(len(seeds)) {
		t.Fatalf("failovers = %d, want %d (one per black-holed primary attempt)", st.Failovers, len(seeds))
	}
	if fired := tr.Fired(nodes[0].host()); fired != len(seeds) {
		t.Fatalf("faults fired = %d, want %d", fired, len(seeds))
	}
}

// TestInflightFailoverOnRealKill kills a live backend (listener and
// connections dropped) while requests whose affinity primary it is
// are in flight; every one must complete on a replica with zero
// failures.
func TestInflightFailoverOnRealKill(t *testing.T) {
	nodes := []*node{startNode(t), startNode(t), startNode(t)}
	const vnodes = 64
	seeds := seedsOwnedBy(t, "n0", 6, 3, vnodes)

	r, err := New(Config{Backends: urls(nodes), Policy: "affinity", Vnodes: vnodes,
		CheckInterval: 20 * time.Millisecond, FailAfter: 2, RiseAfter: 2,
		RetryBase: time.Millisecond, MaxAttempts: 4, Seed: 11, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown(context.Background())

	var wg sync.WaitGroup
	errs := make([]error, len(seeds))
	for i, s := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			st, _, err := r.Eval(ctx, server.JobRequest{Technique: "sraf", Seed: seed})
			if err == nil && st.State != server.StateDone {
				err = fmt.Errorf("settled as %+v", st)
			}
			errs[i] = err
		}(i, s)
	}
	// Kill the primary while the first attempts are on the wire
	// (evaluations take ~150ms under -race; the kill lands well
	// inside them).
	time.Sleep(2 * time.Millisecond)
	nodes[0].kill()
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("in-flight request %d lost to the kill: %v", i, err)
		}
	}
	st := r.Stats()
	if st.Failed != 0 || st.OK != int64(len(seeds)) {
		t.Fatalf("ok/failed = %d/%d, want %d/0", st.OK, st.Failed, len(seeds))
	}
	waitFor(t, "dead backend eviction", func() bool { return !r.Backends()[0].Up() })
}

// TestHealthEvictionAndReinstatement drives a backend through
// fail → threshold eviction → recovery → probe-based reinstatement,
// against a stub whose health flips on demand.
func TestHealthEvictionAndReinstatement(t *testing.T) {
	var sick atomic.Bool
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sick.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(server.HealthStatus{Status: "ok"}) //nolint:errcheck // test stub
	}))
	defer stub.Close()

	r, err := New(Config{Backends: []string{stub.URL},
		CheckInterval: 10 * time.Millisecond, CheckTimeout: 100 * time.Millisecond,
		FailAfter: 3, RiseAfter: 2, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown(context.Background())
	b := r.Backends()[0]

	waitFor(t, "initial healthy state", func() bool { return b.Up() })
	sick.Store(true)
	waitFor(t, "threshold eviction", func() bool { return !b.Up() })
	if ev := b.status().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	sick.Store(false)
	waitFor(t, "probe-based reinstatement", func() bool { return b.Up() })
	if ri := b.status().Reinstates; ri != 1 {
		t.Fatalf("reinstates = %d, want 1", ri)
	}
}

// TestDrainingBackendEvictedImmediately: a node that reports draining
// is pulled from rotation on the very next probe — no failure
// threshold, because drain is a deliberate signal.
func TestDrainingBackendEvictedImmediately(t *testing.T) {
	n := startNode(t)
	r, err := New(Config{Backends: []string{n.url},
		CheckInterval: 10 * time.Millisecond, FailAfter: 50, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown(context.Background())
	b := r.Backends()[0]
	waitFor(t, "healthy", func() bool { return b.Up() })

	if err := n.srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// FailAfter is 50: only the immediate drain eviction can fire
	// this fast.
	waitFor(t, "drain eviction", func() bool { return !b.Up() })
}

// TestRetryBudgetBoundsAmplification: with every backend dead, the
// router stops retrying once the budget empties — each request costs
// one attempt, not MaxAttempts.
func TestRetryBudgetBoundsAmplification(t *testing.T) {
	// Two listeners opened and immediately closed: guaranteed
	// connection-refused targets.
	deadURL := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		u := "http://" + ln.Addr().String()
		ln.Close()
		return u
	}
	r, err := New(Config{Backends: []string{deadURL(), deadURL()},
		CheckInterval: time.Hour, FailAfter: 1 << 30, // probes never evict: the data path is under test
		BreakerThreshold: 1 << 30, MaxAttempts: 3,
		RetryBase: time.Millisecond, RetryBudget: 8, Seed: 5, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown(context.Background())

	const reqs = 20
	ctx := context.Background()
	for i := 0; i < reqs; i++ {
		if _, _, err := r.Eval(ctx, server.JobRequest{Technique: "sraf", Seed: int64(i)}); err == nil {
			t.Fatalf("request %d succeeded against dead backends", i)
		}
	}
	st := r.Stats()
	if st.Failed != reqs {
		t.Fatalf("failed = %d, want %d", st.Failed, reqs)
	}
	var picks int64
	for _, b := range st.Backends {
		picks += b.Picks
	}
	// Budget 8 (deny below 4 tokens): request 1 burns 3 attempts
	// (8→5), request 2 burns 2 (5→3.x), every later request gets
	// exactly 1. Far below the unbudgeted 3×20.
	if picks >= reqs*2 {
		t.Fatalf("total attempts = %d for %d requests: retry budget did not bound amplification", picks, reqs)
	}
	if st.BudgetDenied == 0 {
		t.Fatal("budget never denied a retry against a fully dead cluster")
	}
}

// TestRouterHTTPRewriteAndProxy covers the wire: job IDs gain the
// backend prefix on submit and resolve through the proxy on poll.
func TestRouterHTTPRewriteAndProxy(t *testing.T) {
	nodes := []*node{startNode(t), startNode(t)}
	r, err := New(Config{Backends: urls(nodes), Policy: "round-robin",
		CheckInterval: time.Hour, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown(context.Background())
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	body, _ := json.Marshal(server.JobRequest{Technique: "sraf", Seed: 3})
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.HasPrefix(st.ID, "n0.") && !strings.HasPrefix(st.ID, "n1.") {
		t.Fatalf("submit returned unprefixed job id %q", st.ID)
	}

	waitFor(t, "proxied job to settle", func() bool {
		resp, err := http.Get(front.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var ps server.JobStatus
		if json.NewDecoder(resp.Body).Decode(&ps) != nil {
			return false
		}
		return ps.State == server.StateDone && ps.ID == st.ID
	})

	if resp, _ := http.Get(front.URL + "/v1/jobs/bogus-no-prefix"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unprefixed id status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Get(front.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	mresp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mb struct {
		Router Stats `json:"router"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&mb); err != nil {
		t.Fatal(err)
	}
	if mb.Router.Requests < 1 || len(mb.Router.Backends) != 2 {
		t.Fatalf("metrics body unexpected: %+v", mb.Router)
	}
}

// TestRouterDrainMirrorsDfmd: draining answers 503 to new
// submissions while requests already being routed complete.
func TestRouterDrainMirrorsDfmd(t *testing.T) {
	n := startNode(t)
	r, err := New(Config{Backends: []string{n.url}, CheckInterval: time.Hour, Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	// A request in flight through the router before the drain begins.
	startc := make(chan struct{})
	done := make(chan *http.Response, 1)
	go func() {
		body, _ := json.Marshal(server.JobRequest{Technique: "sraf", Seed: 9})
		close(startc)
		resp, err := http.Post(front.URL+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
		if err == nil {
			done <- resp
		} else {
			done <- nil
		}
	}()
	<-startc
	waitFor(t, "request in flight", func() bool { return r.Stats().Requests >= 1 })

	if err := r.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !r.Draining() {
		t.Fatal("router not draining after Shutdown")
	}

	resp := <-done
	if resp == nil {
		t.Fatal("in-flight request was dropped by the drain")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200", resp.StatusCode)
	}

	body, _ := json.Marshal(server.JobRequest{Technique: "sraf", Seed: 10})
	post, err := http.Post(front.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on draining router = %d, want 503", post.StatusCode)
	}
}

// TestRouterShutdownLeaksNoGoroutines: health probers and routing
// paths all exit; repeated create/use/shutdown cycles return the
// process to its baseline goroutine count. Runs under the tier-1
// -race gate.
func TestRouterShutdownLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for cycle := 0; cycle < 3; cycle++ {
		nodes := []*node{startNode(t), startNode(t)}
		r, err := New(Config{Backends: urls(nodes), Policy: "affinity",
			CheckInterval: 5 * time.Millisecond, Logf: quiet})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for i := 0; i < 4; i++ {
			if _, _, err := r.Eval(ctx, server.JobRequest{Technique: "sraf", Seed: int64(i % 2)}); err != nil {
				t.Fatalf("cycle %d eval %d: %v", cycle, i, err)
			}
		}
		if err := r.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		if err := r.Shutdown(ctx); err != nil { // idempotent
			t.Fatal(err)
		}
		for _, n := range nodes {
			n.kill()
		}
	}
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	waitFor(t, "goroutines to return to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+3
	})
}

// TestPolicyOrders sanity-checks the two non-affinity policies.
func TestPolicyOrders(t *testing.T) {
	backends := []*Backend{
		{Name: "n0"}, {Name: "n1"}, {Name: "n2"},
	}
	rr, _ := NewPolicy("round-robin", nil, 0)
	firsts := map[string]bool{}
	for i := 0; i < 3; i++ {
		ord := rr.Order("k", backends)
		if len(ord) != 3 {
			t.Fatalf("rr order len %d", len(ord))
		}
		firsts[ord[0].Name] = true
	}
	if len(firsts) != 3 {
		t.Fatalf("round-robin did not rotate: %v", firsts)
	}

	ll, _ := NewPolicy("least-loaded", nil, 0)
	backends[0].estWaitNs.Store(300)
	backends[1].estWaitNs.Store(100)
	backends[2].estWaitNs.Store(200)
	ord := ll.Order("k", backends)
	if ord[0].Name != "n1" || ord[1].Name != "n2" || ord[2].Name != "n0" {
		t.Fatalf("least-loaded order = %s,%s,%s", ord[0].Name, ord[1].Name, ord[2].Name)
	}

	if _, err := NewPolicy("bogus", nil, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// Regression: the round-robin counter is a uint64 that will wrap after
// ~584 years at 1M rps — but also immediately if it ever starts high.
// The old code converted to int before reducing, so a counter past
// MaxInt64 produced a negative start index and Order panicked. The
// reduction must happen in uint64 space.
func TestRoundRobinSurvivesCounterWraparound(t *testing.T) {
	backends := []*Backend{{Name: "n0"}, {Name: "n1"}, {Name: "n2"}}
	rr := &roundRobin{}
	// Walk the counter across MaxInt64 (where int conversion goes
	// negative) and across the full uint64 wrap back to zero.
	for _, seed := range []uint64{math.MaxInt64 - 2, math.MaxUint64 - 2} {
		rr.next.Store(seed)
		firsts := map[string]bool{}
		for i := 0; i < 6; i++ {
			ord := rr.Order("k", backends)
			if len(ord) != 3 {
				t.Fatalf("seed %d: order len %d, want 3", seed, len(ord))
			}
			seen := map[string]bool{}
			for _, b := range ord {
				seen[b.Name] = true
			}
			if len(seen) != 3 {
				t.Fatalf("seed %d: order %v lost a backend", seed, ord)
			}
			firsts[ord[0].Name] = true
		}
		if len(firsts) != 3 {
			t.Fatalf("seed %d: rotation collapsed across the wrap: %v", seed, firsts)
		}
	}
}
