// Package router is the fault-tolerant front tier over a fleet of
// dfmd nodes (`cmd/dfmrouter`): it spreads `/v1/jobs` traffic across
// backends under a pluggable policy — round-robin, least-loaded (each
// node's own backlog×EWMA admission estimate), or content-address
// affinity (consistent hashing over the request's sha256 cache key,
// which turns N per-node LRU caches into one effectively global cache
// with no shared store) — and keeps the paper's interactive-checking
// contract honest when nodes die: active health probes with
// threshold eviction and probe-based reinstatement, per-backend
// circuit breakers, retry-on-another-replica with jittered backoff
// that honors server Retry-After hints, and a retry *budget* so a
// cluster-wide outage sheds load instead of amplifying it.
package router

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// Config sizes the router.
type Config struct {
	// Backends are the dfmd base URLs. Each gets a stable name from
	// its position ("n0", "n1", ...): restart a node on the same slot
	// and it keeps its ring arcs and outstanding job IDs.
	Backends []string
	// Policy is "round-robin", "least-loaded", or "affinity";
	// default affinity. Vnodes is the virtual-node count per backend
	// on the affinity ring; default 128.
	Policy string
	Vnodes int

	// CheckInterval/CheckTimeout drive the active health prober;
	// defaults 500ms / 1s. FailAfter consecutive probe failures evict
	// a backend, RiseAfter consecutive successes reinstate it;
	// defaults 3 / 2.
	CheckInterval time.Duration
	CheckTimeout  time.Duration
	FailAfter     int
	RiseAfter     int

	// BreakerThreshold consecutive data-path failures open a
	// backend's circuit; it half-opens after BreakerCooldown;
	// defaults 5 / 2s.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// MaxAttempts bounds tries per request across replicas (first
	// attempt included); default 3. RetryBase/RetryMax shape the
	// jittered exponential backoff between them; defaults 25ms / 2s.
	MaxAttempts int
	RetryBase   time.Duration
	RetryMax    time.Duration
	// AttemptTimeout caps one backend attempt so a black-holed
	// connection becomes a failover, not a hung client; 0 disables.
	// Default 1m (comfortably above any evaluation, far below a
	// human giving up).
	AttemptTimeout time.Duration

	// RetryBudget caps cluster-wide retry amplification: each
	// failure spends a token, each success refunds RetryRatio of
	// one, and retries are denied below half the bucket — so when
	// every backend is dying the router degrades to one attempt per
	// request instead of multiplying the assault by MaxAttempts.
	// Defaults: 100-token bucket, 0.1 ratio.
	RetryBudget int
	RetryRatio  float64

	// Seed fixes the backoff jitter stream; 0 uses 1. Deterministic
	// jitter is what makes failover tests repeatable.
	Seed int64

	// Transport overrides the HTTP transport to every backend (tests
	// inject faultinject.Transport here); nil uses the default.
	Transport http.RoundTripper
	// Logf receives router lifecycle lines; nil uses log.Printf.
	// Quiet callers pass a no-op.
	Logf func(string, ...any)

	// now overrides the breaker clock in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = "affinity"
	}
	if c.Vnodes == 0 {
		c.Vnodes = 128
	}
	if c.CheckInterval == 0 {
		c.CheckInterval = 500 * time.Millisecond
	}
	if c.CheckTimeout == 0 {
		c.CheckTimeout = time.Second
	}
	if c.FailAfter == 0 {
		c.FailAfter = 3
	}
	if c.RiseAfter == 0 {
		c.RiseAfter = 2
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase == 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax == 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = time.Minute
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 100
	}
	if c.RetryRatio == 0 {
		c.RetryRatio = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Stats is the router's always-on accounting.
type Stats struct {
	Policy         string `json:"policy"`
	Requests       int64  `json:"requests"`
	OK             int64  `json:"ok"`
	Failed         int64  `json:"failed"`
	Retries        int64  `json:"retries"`
	Failovers      int64  `json:"failovers"`
	NoBackend      int64  `json:"noBackend"`
	BudgetDenied   int64  `json:"retryBudgetDenied"`
	BreakerBlocked int64  `json:"breakerBlocked"`
	// TileJobs counts tile work units routed to completion (full tiles
	// and deltas alike); TileReused counts those a backend answered
	// from cache or deduped into an in-flight twin — the fleet-wide
	// duplicate-tile hit signal. DeltaJobs counts the subset submitted
	// incrementally (Kind "delta", routed by parent-address affinity).
	TileJobs   int64           `json:"tileJobs"`
	TileReused int64           `json:"tileReused"`
	DeltaJobs  int64           `json:"deltaJobs"`
	Draining   bool            `json:"draining"`
	Backends   []BackendStatus `json:"backends"`
}

// Router routes jobs across dfmd backends. Build with New; the
// caller owns Shutdown.
type Router struct {
	cfg      Config
	backends []*Backend
	policy   Policy
	retry    *client.RetryPolicy
	budget   *throttle

	draining atomic.Bool
	inflight sync.WaitGroup
	stop     chan struct{}
	loops    sync.WaitGroup

	requests, ok, failed    atomic.Int64
	retries, failovers      atomic.Int64
	noBackend, budgetDenied atomic.Int64
	breakerBlocked          atomic.Int64
	tileJobs, tileReused    atomic.Int64
	deltaJobs               atomic.Int64
}

// New builds the router and starts its health probers.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: no backends configured")
	}
	hc := &http.Client{Transport: cfg.Transport}
	names := make([]string, len(cfg.Backends))
	backends := make([]*Backend, len(cfg.Backends))
	for i, url := range cfg.Backends {
		names[i] = fmt.Sprintf("n%d", i)
		backends[i] = newBackend(names[i], url, hc, cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now)
	}
	pol, err := NewPolicy(cfg.Policy, names, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	retry := client.NewRetryPolicy(cfg.MaxAttempts, cfg.Seed)
	retry.Base, retry.Max = cfg.RetryBase, cfg.RetryMax
	r := &Router{
		cfg:      cfg,
		backends: backends,
		policy:   pol,
		retry:    retry,
		budget:   newThrottle(float64(cfg.RetryBudget), cfg.RetryRatio),
		stop:     make(chan struct{}),
	}
	for _, b := range backends {
		r.loops.Add(1)
		go r.healthLoop(b)
	}
	return r, nil
}

func (r *Router) logf(format string, args ...any) { r.cfg.Logf(format, args...) }

// Backends returns the backend list (router tests and /metrics).
func (r *Router) Backends() []*Backend { return r.backends }

// Draining reports whether shutdown has begun.
func (r *Router) Draining() bool { return r.draining.Load() }

// errNoBackend is returned when no healthy, breaker-admitted backend
// remains to try.
var errNoBackend = errors.New("router: no available backend")

// pick returns the first eligible backend in policy order that is not
// in tried, also reporting whether anything was skipped only because
// its breaker is open (that distinction drives the 502-vs-503 answer).
func (r *Router) pick(key string, tried map[*Backend]bool) *Backend {
	for _, b := range r.policy.Order(key, r.backends) {
		if tried[b] || !b.up.Load() {
			continue
		}
		if !b.breaker.allow() {
			r.breakerBlocked.Add(1)
			mBreakerHit.Inc()
			continue
		}
		return b
	}
	return nil
}

// route drives one request through pick → call → classify → failover
// until it succeeds, exhausts its attempt/budget allowance, or hits a
// terminal error. call is the per-backend operation (Eval or Submit).
func (r *Router) route(ctx context.Context, key string, call func(context.Context, *Backend) (server.JobStatus, error)) (server.JobStatus, *Backend, error) {
	r.requests.Add(1)
	mRequests.Inc()
	start := time.Now()
	tried := make(map[*Backend]bool)
	var (
		lastErr error
		hint    time.Duration
	)
	for attempt := 1; attempt <= r.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			if !r.budget.allowRetry() {
				r.budgetDenied.Add(1)
				mBudgetDeny.Inc()
				break
			}
			r.retries.Add(1)
			mRetries.Inc()
			d := r.retry.Delay(attempt-1, hint)
			if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
				break
			}
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				r.failed.Add(1)
				mFailed.Inc()
				return server.JobStatus{}, nil, ctx.Err()
			}
		}
		b := r.pick(key, tried)
		if b == nil && len(tried) > 0 {
			// Every distinct replica was tried once; a further attempt
			// may re-try one that has had time to recover.
			clear(tried)
			b = r.pick(key, tried)
		}
		if b == nil {
			r.noBackend.Add(1)
			mNoBackend.Inc()
			if lastErr == nil {
				lastErr = errNoBackend
			}
			break
		}
		tried[b] = true
		if attempt > 1 {
			r.failovers.Add(1)
			mFailovers.Inc()
		}
		b.picks.Add(1)
		b.inflight.Add(1)
		actx, cancel := ctx, func() {}
		if r.cfg.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.cfg.AttemptTimeout)
		}
		st, err := call(actx, b)
		cancel()
		b.inflight.Add(-1)
		hint = 0
		o := classify(err)
		if o == outcomeTerminal && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			// The *attempt* timed out, not the caller: a black-holed
			// backend. That is a transport fault — fail over.
			o = outcomeFault
		}
		switch o {
		case outcomeOK:
			b.oks.Add(1)
			b.breaker.success()
			r.budget.onSuccess()
			r.ok.Add(1)
			mOK.Inc()
			mE2E.ObserveSince(start)
			return st, b, nil
		case outcomeOverloaded:
			// The node is alive and pushing back; that is not a
			// breaker-worthy fault, but it does spend retry budget —
			// retrying into an overloaded cluster is amplification too.
			b.sheds.Add(1)
			b.breaker.success()
			r.budget.onFailure()
			hint = client.RetryHint(err)
			lastErr = err
		case outcomeDraining:
			// Deliberate drain: evict now rather than waiting out the
			// probe threshold, and don't charge the budget — the node
			// told us cleanly, nothing is burning.
			r.evict(b, "draining on submit")
			lastErr = err
		case outcomeTerminal:
			// Validation errors and context expiry: the other
			// replicas would say exactly the same thing.
			b.breaker.success()
			r.failed.Add(1)
			mFailed.Inc()
			return st, b, err
		case outcomeFault:
			b.fails.Add(1)
			b.breaker.failure()
			r.budget.onFailure()
			lastErr = err
		}
	}
	r.failed.Add(1)
	mFailed.Inc()
	return server.JobStatus{}, nil, lastErr
}

// Eval routes a submit-and-wait request.
func (r *Router) Eval(ctx context.Context, req server.JobRequest) (server.JobStatus, *Backend, error) {
	key := routeKey(req)
	st, b, err := r.route(ctx, key, func(ctx context.Context, b *Backend) (server.JobStatus, error) {
		return b.cl.Eval(ctx, req)
	})
	r.noteTile(req, st, b, err)
	return st, b, err
}

// Submit routes a fire-and-poll submission.
func (r *Router) Submit(ctx context.Context, req server.JobRequest) (server.JobStatus, *Backend, error) {
	key := routeKey(req)
	st, b, err := r.route(ctx, key, func(ctx context.Context, b *Backend) (server.JobStatus, error) {
		return b.cl.Submit(ctx, req)
	})
	r.noteTile(req, st, b, err)
	return st, b, err
}

// noteTile folds one successfully routed tile work unit into the
// fleet-level tile accounting: total units, per-backend placement, and
// reuse (a backend answering from its cache or deduping into an
// in-flight twin — the signal fleetbench reports as the duplicate-tile
// hit rate).
func (r *Router) noteTile(req server.JobRequest, st server.JobStatus, b *Backend, err error) {
	if err != nil || b == nil || (req.Kind != server.KindTile && req.Kind != server.KindDelta) {
		return
	}
	r.tileJobs.Add(1)
	mTileJobs.Inc()
	b.tiles.Add(1)
	if req.Kind == server.KindDelta {
		r.deltaJobs.Add(1)
		mDeltaJobs.Inc()
	}
	if st.Cached || st.Deduped {
		r.tileReused.Add(1)
		mTileReused.Inc()
	}
}

// routeKey is the affinity key: the same content address the backend
// will compute. Requests the backends would reject (unknown tech)
// still need *some* key to route by — they hash their technique name
// and fail on the node they land on.
func routeKey(req server.JobRequest) string {
	if key, err := server.KeyForRequest(req); err == nil {
		return key
	}
	return "invalid:" + req.Technique
}

// request outcomes, classified from the backend client's error.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeOverloaded
	outcomeDraining
	outcomeFault
	outcomeTerminal
)

func classify(err error) outcome {
	switch {
	case err == nil:
		return outcomeOK
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return outcomeTerminal
	case errors.Is(err, client.ErrDraining):
		return outcomeDraining
	}
	var ov *client.Overloaded
	if errors.As(err, &ov) {
		return outcomeOverloaded
	}
	var se *client.StatusError
	if errors.As(err, &se) {
		if se.Code >= 500 {
			return outcomeFault
		}
		return outcomeTerminal
	}
	// Transport-level: dial refused, reset, EOF mid-body, ...
	return outcomeFault
}

// Stats snapshots the router counters and per-backend states.
func (r *Router) Stats() Stats {
	st := Stats{
		Policy:         r.policy.Name(),
		Requests:       r.requests.Load(),
		OK:             r.ok.Load(),
		Failed:         r.failed.Load(),
		Retries:        r.retries.Load(),
		Failovers:      r.failovers.Load(),
		NoBackend:      r.noBackend.Load(),
		BudgetDenied:   r.budgetDenied.Load(),
		BreakerBlocked: r.breakerBlocked.Load(),
		TileJobs:       r.tileJobs.Load(),
		TileReused:     r.tileReused.Load(),
		DeltaJobs:      r.deltaJobs.Load(),
		Draining:       r.draining.Load(),
	}
	for _, b := range r.backends {
		st.Backends = append(st.Backends, b.status())
	}
	return st
}

// Shutdown drains the router, mirroring dfmd's SIGTERM semantics:
// new submissions answer 503 immediately, requests already being
// routed run to completion (failovers included) unless ctx expires
// first, and the health probers stop. Safe to call more than once.
func (r *Router) Shutdown(ctx context.Context) error {
	r.draining.Store(true)
	done := make(chan struct{})
	go func() {
		r.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	select {
	case <-r.stop:
		// already closed by an earlier Shutdown
	default:
		close(r.stop)
	}
	r.loops.Wait()
	return err
}

// throttle is a gRPC-style retry budget: a token bucket where
// failures spend a whole token, successes refund `ratio` of one, and
// retries are allowed only while the bucket is above half. No clock —
// the budget tracks the live success:failure mix, so a healthy
// cluster always has retries available and a dying one runs out
// within ~cap/2 failures.
type throttle struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	ratio  float64
}

func newThrottle(cap, ratio float64) *throttle {
	return &throttle{tokens: cap, cap: cap, ratio: ratio}
}

func (t *throttle) allowRetry() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tokens > t.cap/2
}

func (t *throttle) onFailure() {
	t.mu.Lock()
	t.tokens = math.Max(0, t.tokens-1)
	t.mu.Unlock()
}

func (t *throttle) onSuccess() {
	t.mu.Lock()
	t.tokens = math.Min(t.cap, t.tokens+t.ratio)
	t.mu.Unlock()
}
