package router

import "repro/internal/obs"

// obs mirrors of the router counters, alongside the dfmd.* server
// metrics in registry snapshots. Authoritative always-on accounting
// is Router.Stats; these record only while the registry is enabled.
var (
	mRequests   = obs.C("dfmrouter.requests")
	mOK         = obs.C("dfmrouter.ok")
	mRetries    = obs.C("dfmrouter.retries")
	mFailovers  = obs.C("dfmrouter.failovers")
	mFailed     = obs.C("dfmrouter.failed")
	mNoBackend  = obs.C("dfmrouter.no_backend")
	mBudgetDeny = obs.C("dfmrouter.retry_budget_denied")
	mEvicted    = obs.C("dfmrouter.evicted")
	mReinstated = obs.C("dfmrouter.reinstated")
	mBreakerHit = obs.C("dfmrouter.breaker_blocked")

	// Distributed tile traffic (full-chip fan-out through the fleet).
	mTileJobs   = obs.C("dfmrouter.tile_jobs")
	mTileReused = obs.C("dfmrouter.tile_reused")
	mDeltaJobs  = obs.C("dfmrouter.delta_jobs")

	// mE2E is the router-side submit-to-settle latency, including
	// every failover hop and backoff.
	mE2E = obs.H("dfmrouter.e2e_ns")
)
