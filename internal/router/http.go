package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/dfm"
	"repro/internal/obs"
	"repro/internal/server"
)

// Handler returns the router's HTTP API — wire-compatible with a
// single dfmd node, so clients point at the router and notice nothing
// except that it survives node deaths:
//
//	POST /v1/jobs            route a submission; ?wait=1 blocks
//	GET  /v1/jobs/{id}       poll (IDs carry the backend: "n2.j-000017")
//	GET  /v1/jobs/{id}/result  settled outcome
//	GET  /v1/techniques      technique registry
//	GET  /healthz            200 while ≥1 backend is up and not draining
//	GET  /metrics            router stats + per-backend states + obs registry
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", r.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", r.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", r.handleResult)
	mux.HandleFunc("GET /v1/techniques", r.handleTechniques)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, server.ErrorBody{Error: msg})
}

func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	if r.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "router shutting down")
		return
	}
	r.inflight.Add(1)
	defer r.inflight.Done()

	var jr server.JobRequest
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jr); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var (
		st  server.JobStatus
		b   *Backend
		err error
	)
	if req.URL.Query().Get("wait") != "" {
		st, b, err = r.Eval(req.Context(), jr)
	} else {
		st, b, err = r.Submit(req.Context(), jr)
	}
	if err != nil {
		r.writeRouteError(w, err)
		return
	}
	st.ID = b.Name + "." + st.ID
	code := http.StatusAccepted
	if st.State == server.StateDone || st.State == server.StateFailed {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// writeRouteError maps a routing failure onto the wire. Overload and
// drain keep their single-node shapes (429 with the hint, 503);
// transport-level exhaustion is the router's own 502.
func (r *Router) writeRouteError(w http.ResponseWriter, err error) {
	var ov *client.Overloaded
	switch {
	case errors.As(err, &ov):
		// Same contract as a single dfmd node: the header carries the
		// hint in whole seconds with a 1s floor (a sub-second estimate
		// would round to 0 and spin naive callers), the JSON body the
		// millisecond-precision value.
		secs := int64(ov.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		writeJSON(w, http.StatusTooManyRequests, server.ErrorBody{
			Error:        "cluster overloaded",
			RetryAfterMS: ov.RetryAfter.Milliseconds(),
		})
	case errors.Is(err, client.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "all backends draining")
	case errors.Is(err, errNoBackend):
		writeError(w, http.StatusServiceUnavailable, "no available backend")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusRequestTimeout, "canceled while routing: "+err.Error())
	default:
		var se *client.StatusError
		if errors.As(err, &se) && se.Code < 500 {
			// Backend validation verdicts pass through unchanged.
			writeError(w, se.Code, se.Msg)
			return
		}
		writeError(w, http.StatusBadGateway, "all replicas failed: "+err.Error())
	}
}

// splitID separates "n2.j-000017" into its backend and node-local
// job ID.
func (r *Router) splitID(id string) (*Backend, string, bool) {
	name, rest, ok := strings.Cut(id, ".")
	if !ok {
		return nil, "", false
	}
	for _, b := range r.backends {
		if b.Name == name {
			return b, rest, true
		}
	}
	return nil, "", false
}

func (r *Router) proxyJob(w http.ResponseWriter, req *http.Request, result bool) {
	b, local, ok := r.splitID(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id (want <backend>.<id>)")
		return
	}
	st, err := b.cl.Job(req.Context(), local)
	if err != nil {
		var se *client.StatusError
		if errors.As(err, &se) {
			writeError(w, se.Code, se.Msg)
			return
		}
		writeError(w, http.StatusBadGateway, "backend "+b.Name+" unreachable: "+err.Error())
		return
	}
	st.ID = b.Name + "." + st.ID
	code := http.StatusOK
	if result && st.State != server.StateDone && st.State != server.StateFailed {
		code = http.StatusAccepted
	}
	writeJSON(w, code, st)
}

func (r *Router) handleJob(w http.ResponseWriter, req *http.Request) {
	r.proxyJob(w, req, false)
}

func (r *Router) handleResult(w http.ResponseWriter, req *http.Request) {
	r.proxyJob(w, req, true)
}

func (r *Router) handleTechniques(w http.ResponseWriter, req *http.Request) {
	// The registry is compiled into the router binary itself; no need
	// to burn a backend round trip on it.
	writeJSON(w, http.StatusOK, map[string]any{"techniques": dfm.Techniques()})
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if r.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	up := 0
	for _, b := range r.backends {
		if b.up.Load() {
			up++
		}
	}
	if up == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "no backends", "up": 0, "backends": len(r.backends),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "up": up, "backends": len(r.backends),
	})
}

// routerMetricsBody is the /metrics payload.
type routerMetricsBody struct {
	Router   Stats        `json:"router"`
	Registry obs.Snapshot `json:"registry"`
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, routerMetricsBody{
		Router:   r.Stats(),
		Registry: obs.Default().Snapshot(),
	})
}
