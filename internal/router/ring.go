package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring with virtual nodes. Each backend
// owns Vnodes points on a 64-bit circle; a key routes to the owner of
// the first point at or after its hash. Two properties carry the
// affinity policy:
//
//   - Stability: adding or removing one node only moves the keys in
//     the arcs that node's points bound — roughly 1/N of the space —
//     so the per-node result caches stay warm through membership
//     churn instead of being reshuffled wholesale.
//   - Ordered failover: walking the circle past the primary yields a
//     deterministic replica order per key, so when the primary is
//     down every router instance retries the *same* secondary and
//     the key's cache residency stays concentrated.
type ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	names  []string    // distinct backend names, build order
}

type ringPoint struct {
	hash uint64
	name string
}

// newRing builds a ring over the named backends with the given
// virtual-node count per backend (values below 1 mean 1).
func newRing(names []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &ring{vnodes: vnodes, names: append([]string(nil), names...)}
	for _, n := range names {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", n, i)),
				name: n,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].name < r.points[b].name
	})
	return r
}

// owner returns the backend the key hashes to, or "" on an empty
// ring.
func (r *ring) owner(key string) string {
	seq := r.seq(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// seq returns up to max distinct backends in ring order starting at
// the key's primary: the preference order affinity failover walks.
func (r *ring) seq(key string, max int) []string {
	if len(r.points) == 0 || max < 1 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, max)
	var out []string
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.name] {
			seen[p.name] = true
			out = append(out, p.name)
		}
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never errors
	return h.Sum64()
}
