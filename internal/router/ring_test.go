package router

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real content addresses: opaque and high-entropy.
		keys[i] = fmt.Sprintf("sha256:%064x", i*2654435761)
	}
	return keys
}

// TestRingStabilityUnderRemoval pins the consistent-hashing contract:
// removing one node moves only that node's keys — every key owned by
// a surviving node keeps its owner, so the surviving caches stay
// warm.
func TestRingStabilityUnderRemoval(t *testing.T) {
	names := []string{"n0", "n1", "n2"}
	r3 := newRing(names, 128)
	keys := ringKeys(10000)

	owner3 := make(map[string]string, len(keys))
	for _, k := range keys {
		owner3[k] = r3.owner(k)
		if owner3[k] == "" {
			t.Fatalf("key %q unowned on a populated ring", k)
		}
	}

	r2 := newRing([]string{"n0", "n2"}, 128) // n1 removed
	moved := 0
	for _, k := range keys {
		o2 := r2.owner(k)
		if owner3[k] == "n1" {
			if o2 == "n1" {
				t.Fatalf("key %q still owned by removed node", k)
			}
			moved++
			continue
		}
		if o2 != owner3[k] {
			t.Fatalf("key %q moved %s→%s though its owner survived", k, owner3[k], o2)
		}
	}
	// n1 owned roughly a third of the space; all of it (and only it)
	// moved.
	if moved < len(keys)/6 || moved > len(keys)/2 {
		t.Fatalf("%d/%d keys moved on removal, want ≈1/3", moved, len(keys))
	}
}

// TestRingBoundedMovementOnAdd: growing 3→4 nodes relocates about a
// quarter of the keyspace, not a reshuffle.
func TestRingBoundedMovementOnAdd(t *testing.T) {
	r3 := newRing([]string{"n0", "n1", "n2"}, 128)
	r4 := newRing([]string{"n0", "n1", "n2", "n3"}, 128)
	keys := ringKeys(10000)

	moved := 0
	for _, k := range keys {
		o3, o4 := r3.owner(k), r4.owner(k)
		if o3 != o4 {
			if o4 != "n3" {
				t.Fatalf("key %q moved %s→%s, but only moves onto the new node are legal", k, o3, o4)
			}
			moved++
		}
	}
	// Ideal is 1/4; allow generous slack for vnode placement variance
	// but fail on anything resembling a rehash-everything.
	if moved < len(keys)/8 || moved > len(keys)/2 {
		t.Fatalf("%d/%d keys moved on add, want ≈1/4", moved, len(keys))
	}
}

// TestRingSeqDeterministicFailoverOrder: the replica walk is stable
// per key, starts at the owner, and covers every distinct node.
func TestRingSeqDeterministicFailoverOrder(t *testing.T) {
	r := newRing([]string{"n0", "n1", "n2"}, 64)
	for _, k := range ringKeys(100) {
		s1 := r.seq(k, 3)
		s2 := r.seq(k, 3)
		if len(s1) != 3 {
			t.Fatalf("seq(%q) = %v, want all 3 distinct nodes", k, s1)
		}
		if s1[0] != r.owner(k) {
			t.Fatalf("seq(%q)[0] = %s, owner = %s", k, s1[0], r.owner(k))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("seq(%q) unstable: %v vs %v", k, s1, s2)
			}
		}
		seen := map[string]bool{}
		for _, n := range s1 {
			if seen[n] {
				t.Fatalf("seq(%q) repeats %s: %v", k, n, s1)
			}
			seen[n] = true
		}
	}
}

// TestRingBalance: virtual nodes keep per-node load within a sane
// band of the fair share.
func TestRingBalance(t *testing.T) {
	r := newRing([]string{"n0", "n1", "n2"}, 128)
	counts := map[string]int{}
	keys := ringKeys(30000)
	for _, k := range keys {
		counts[r.owner(k)]++
	}
	fair := len(keys) / 3
	for n, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("node %s owns %d of %d keys (fair %d): imbalance beyond 2×", n, c, len(keys), fair)
		}
	}
}

// TestRingEmptyAndSingle: degenerate shapes must not panic.
func TestRingEmptyAndSingle(t *testing.T) {
	if o := newRing(nil, 16).owner("k"); o != "" {
		t.Fatalf("empty ring owner = %q, want empty", o)
	}
	r := newRing([]string{"solo"}, 16)
	if o := r.owner("anything"); o != "solo" {
		t.Fatalf("single-node ring owner = %q", o)
	}
	if s := r.seq("anything", 5); len(s) != 1 || s[0] != "solo" {
		t.Fatalf("single-node seq = %v", s)
	}
}
