package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultsFireInPlanOrderThenClear(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	s := New().
		Plan("tech", Fault{Err: e1}).
		Plan("tech", Fault{Err: e2})
	ctx := context.Background()
	if err := s.Hook(ctx, "tech", 0); !errors.Is(err, e1) {
		t.Fatalf("first activation = %v", err)
	}
	if err := s.Hook(ctx, "tech", 1); !errors.Is(err, e2) {
		t.Fatalf("second activation = %v", err)
	}
	if err := s.Hook(ctx, "tech", 2); err != nil {
		t.Fatalf("exhausted plan still firing: %v", err)
	}
	if s.Fired("tech") != 2 || s.Remaining("tech") != 0 {
		t.Fatalf("bookkeeping: fired=%d remaining=%d", s.Fired("tech"), s.Remaining("tech"))
	}
}

func TestTimesExpandsActivations(t *testing.T) {
	e := errors.New("transient")
	s := New().Plan("tech", Fault{Err: e, Times: 3})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := s.Hook(ctx, "tech", i); !errors.Is(err, e) {
			t.Fatalf("activation %d = %v", i, err)
		}
	}
	if err := s.Hook(ctx, "tech", 3); err != nil {
		t.Fatalf("fault fired beyond Times: %v", err)
	}
}

func TestUnplannedTechniqueUnaffected(t *testing.T) {
	s := New().Plan("other", Fault{PanicMsg: "boom"})
	if err := s.Hook(context.Background(), "tech", 0); err != nil {
		t.Fatalf("clean technique got fault: %v", err)
	}
	if s.Fired("tech") != 0 {
		t.Fatalf("fired count leaked across techniques")
	}
}

func TestPanicFault(t *testing.T) {
	s := New().Plan("tech", Fault{PanicMsg: "injected crash"})
	defer func() {
		if r := recover(); r != "injected crash" {
			t.Fatalf("recover = %v", r)
		}
	}()
	s.Hook(context.Background(), "tech", 0)
	t.Fatal("hook did not panic")
}

func TestDelayHonorsContext(t *testing.T) {
	s := New().Plan("tech", Fault{Delay: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Hook(ctx, "tech", 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("delay did not yield to ctx: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("delay ignored cancellation")
	}
}

func TestBlockingDelayIgnoresContext(t *testing.T) {
	s := New().Plan("tech", Fault{Delay: 50 * time.Millisecond, Block: true})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Hook(ctx, "tech", 0); err != nil {
		t.Fatalf("blocking delay returned error: %v", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatalf("blocking delay yielded to ctx early")
	}
}
