// Package faultinject is a deterministic fault-injection hook layer
// for the evaluation harness: plan panics, delays, and transient
// errors by technique name, then hand Set.Hook to harness.Options.
// Faults fire in plan order, a fixed number of times, with no
// randomness — the same plan produces the same failure sequence on
// every run, which is what makes degraded-mode behavior testable.
package faultinject

import (
	"context"
	"sync"
	"time"
)

// Fault is one planned failure. At most one action fires per
// activation, checked in order: Delay (if set), then PanicMsg, then
// Err. A pure-delay fault (no PanicMsg, nil Err) just slows the
// attempt down.
type Fault struct {
	// Delay stalls the attempt before acting.
	Delay time.Duration
	// Block makes Delay ignore context cancellation — a true hang
	// the harness can only abandon. When false the delay honors ctx
	// and returns ctx.Err() at the deadline, modeling a cooperative
	// evaluator that notices its budget expired.
	Block bool
	// PanicMsg, when non-empty, panics with this message.
	PanicMsg string
	// Err, when non-nil, is returned as the attempt's error. Wrap it
	// with harness.Workload to make it retryable.
	Err error
	// Times is how many consecutive activations this fault covers
	// (0 means 1).
	Times int
}

// Set is a concurrency-safe fault plan keyed by technique name.
type Set struct {
	mu    sync.Mutex
	plans map[string][]Fault
	fired map[string]int
}

// New returns an empty fault set.
func New() *Set {
	return &Set{plans: make(map[string][]Fault), fired: make(map[string]int)}
}

// Plan appends a fault for the named technique and returns the set
// for chaining. Each activation consumes one planned fault; once a
// technique's plan is exhausted its attempts run clean.
func (s *Set) Plan(name string, f Fault) *Set {
	n := f.Times
	if n < 1 {
		n = 1
	}
	f.Times = 1
	s.mu.Lock()
	for i := 0; i < n; i++ {
		s.plans[name] = append(s.plans[name], f)
	}
	s.mu.Unlock()
	return s
}

// Hook is a harness.Hook: it fires the next planned fault for the
// technique, if any.
func (s *Set) Hook(ctx context.Context, technique string, attempt int) error {
	s.mu.Lock()
	q := s.plans[technique]
	if len(q) == 0 {
		s.mu.Unlock()
		return nil
	}
	f := q[0]
	s.plans[technique] = q[1:]
	s.fired[technique]++
	s.mu.Unlock()

	if f.Delay > 0 {
		if f.Block {
			time.Sleep(f.Delay)
		} else {
			t := time.NewTimer(f.Delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if f.PanicMsg != "" {
		panic(f.PanicMsg)
	}
	return f.Err
}

// Fired returns how many faults have fired for the technique.
func (s *Set) Fired(technique string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired[technique]
}

// Remaining returns how many planned faults are still pending for
// the technique.
func (s *Set) Remaining(technique string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.plans[technique])
}
