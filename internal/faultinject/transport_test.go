package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

func faultTestServer(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 64)) //nolint:errcheck // test body
	}))
	t.Cleanup(ts.Close)
	return ts, strings.TrimPrefix(ts.URL, "http://")
}

func TestTransportRefuse(t *testing.T) {
	ts, host := faultTestServer(t)
	tr := NewTransport(nil).PlanHost(host, TransportFault{Kind: Refuse, Times: 2})
	c := &http.Client{Transport: tr}

	for i := 0; i < 2; i++ {
		_, err := c.Get(ts.URL)
		if err == nil || !errors.Is(err, syscall.ECONNREFUSED) {
			t.Fatalf("request %d: err = %v, want ECONNREFUSED", i, err)
		}
	}
	// Plan exhausted: traffic flows again.
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatalf("post-plan request: %v", err)
	}
	resp.Body.Close()
	if got := tr.Fired(host); got != 2 {
		t.Fatalf("fired = %d, want 2", got)
	}
}

func TestTransportHangHonorsContext(t *testing.T) {
	ts, host := faultTestServer(t)
	tr := NewTransport(nil).PlanHost(host, TransportFault{Kind: Hang})
	c := &http.Client{Transport: tr}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	_, err := c.Do(req)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("hang returned before the context deadline")
	}
}

func TestTransportResetMidBody(t *testing.T) {
	ts, host := faultTestServer(t)
	tr := NewTransport(nil).PlanHost(host, TransportFault{Kind: Reset, AfterBytes: 10})
	c := &http.Client{Transport: tr}

	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatalf("reset fault failed the request itself: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("read err = %v (got %d bytes), want ECONNRESET", err, len(body))
	}
	if len(body) != 10 {
		t.Fatalf("delivered %d bytes before reset, want 10", len(body))
	}
}

func TestTransportSlowStart(t *testing.T) {
	ts, host := faultTestServer(t)
	tr := NewTransport(nil).PlanHost(host, TransportFault{Kind: Slow, Delay: 40 * time.Millisecond})
	c := &http.Client{Transport: tr}

	start := time.Now()
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatalf("slow fault errored: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("request took %v, want ≥40ms added latency", d)
	}
}

// TestTransportPlanOrderAndIsolation: faults fire in plan order and
// only against the planned host.
func TestTransportPlanOrderAndIsolation(t *testing.T) {
	ts, host := faultTestServer(t)
	other, _ := faultTestServer(t)
	tr := NewTransport(nil).
		PlanHost(host, TransportFault{Kind: Refuse}).
		PlanHost(host, TransportFault{Kind: Slow, Delay: time.Millisecond})
	c := &http.Client{Transport: tr}

	// Unplanned host is untouched even while a plan is pending.
	resp, err := c.Get(other.URL)
	if err != nil {
		t.Fatalf("unplanned host: %v", err)
	}
	resp.Body.Close()

	if _, err := c.Get(ts.URL); !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("first planned fault = %v, want refuse", err)
	}
	resp, err = c.Get(ts.URL)
	if err != nil {
		t.Fatalf("second planned fault (slow) errored: %v", err)
	}
	resp.Body.Close()
	if tr.Remaining(host) != 0 {
		t.Fatalf("remaining = %d, want 0", tr.Remaining(host))
	}
}
