package faultinject

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"
)

// TransportFaultKind names one way an HTTP hop can die. These model
// the cluster failure modes a router must survive: a dead process
// (refused), a wedged one (hang), a process killed mid-response
// (reset), and a recovering or overloaded one (slow).
type TransportFaultKind int

const (
	// Refuse fails immediately with ECONNREFUSED, as if nothing is
	// listening on the port.
	Refuse TransportFaultKind = iota
	// Hang black-holes the request: no bytes ever move, and the call
	// returns only when the request context gives up.
	Hang
	// Reset lets the request through but kills the response body
	// after AfterBytes bytes, like a peer closing mid-transfer.
	Reset
	// Slow stalls the request by Delay before forwarding it — the
	// slow-start shape of a node paging its cache back in.
	Slow
)

func (k TransportFaultKind) String() string {
	switch k {
	case Refuse:
		return "refuse"
	case Hang:
		return "hang"
	case Reset:
		return "reset"
	case Slow:
		return "slow"
	}
	return fmt.Sprintf("TransportFaultKind(%d)", int(k))
}

// TransportFault is one planned transport failure.
type TransportFault struct {
	Kind TransportFaultKind
	// Delay is the added latency for Slow faults.
	Delay time.Duration
	// AfterBytes is how much of the response body a Reset fault
	// delivers before failing (0 = fail on the first read).
	AfterBytes int
	// Path, when non-empty, restricts the fault to requests whose
	// URL path starts with it. Requests to other paths pass through
	// without consuming the fault — e.g. faulting "/v1/jobs" while
	// health probes to /healthz stay clean, so eviction timing and
	// data-path failover can be tested independently.
	Path string
	// Times is how many consecutive requests this fault covers
	// (0 means 1).
	Times int
}

// Transport is a deterministic fault-injecting http.RoundTripper:
// plan faults per destination host, in order, a fixed number of
// times — same plan, same failure sequence, like Set does for
// evaluator attempts. Requests to hosts with an exhausted (or empty)
// plan pass straight through to the base transport.
type Transport struct {
	base http.RoundTripper

	mu    sync.Mutex
	plans map[string][]TransportFault
	fired map[string]int
}

// NewTransport wraps base (nil means http.DefaultTransport).
func NewTransport(base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		base:  base,
		plans: make(map[string][]TransportFault),
		fired: make(map[string]int),
	}
}

// PlanHost appends a fault for requests to the given host:port and
// returns the transport for chaining.
func (t *Transport) PlanHost(host string, f TransportFault) *Transport {
	n := f.Times
	if n < 1 {
		n = 1
	}
	f.Times = 1
	t.mu.Lock()
	for i := 0; i < n; i++ {
		t.plans[host] = append(t.plans[host], f)
	}
	t.mu.Unlock()
	return t
}

// Fired returns how many faults have fired against the host.
func (t *Transport) Fired(host string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fired[host]
}

// Remaining returns how many planned faults are still pending for the
// host.
func (t *Transport) Remaining(host string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.plans[host])
}

// RoundTrip consumes the host's next planned fault whose Path filter
// matches the request, if any. Order is preserved within each
// matching class.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	t.mu.Lock()
	q := t.plans[host]
	idx := -1
	for i, f := range q {
		if f.Path == "" || strings.HasPrefix(req.URL.Path, f.Path) {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.mu.Unlock()
		return t.base.RoundTrip(req)
	}
	f := q[idx]
	t.plans[host] = append(q[:idx:idx], q[idx+1:]...)
	t.fired[host]++
	t.mu.Unlock()

	switch f.Kind {
	case Refuse:
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	case Hang:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case Slow:
		tm := time.NewTimer(f.Delay)
		defer tm.Stop()
		select {
		case <-tm.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.base.RoundTrip(req)
	case Reset:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &resetBody{rc: resp.Body, left: f.AfterBytes}
		return resp, nil
	}
	return t.base.RoundTrip(req)
}

// resetBody delivers at most `left` bytes, then fails reads with
// ECONNRESET — a peer that died mid-response.
type resetBody struct {
	rc   io.ReadCloser
	left int
}

func (b *resetBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	}
	if len(p) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= n
	if err == nil && b.left <= 0 {
		// The truncation point is reached; the *next* read resets.
		return n, nil
	}
	return n, err
}

func (b *resetBody) Close() error { return b.rc.Close() }
