package pattern

import (
	"sort"

	"repro/internal/geom"
)

// Auto-fixing: the enforcement+repair half of the pattern methodology.
// A Fix pairs a known-bad construct with a pre-characterized
// replacement; ApplyFixes finds every occurrence in a layout and swaps
// the window contents for the fix, keeping a change only when the
// caller's acceptance check (typically an incremental DRC) passes.
// This is how stitch repairs and litho-hotspot fixes ship inside
// production flows: opportunistic, local, verified per site.

// Fix is one pre-characterized repair.
type Fix struct {
	Name string
	// Match is the construct to find (exact canonical match).
	Match Pattern
	// Replacement is the window-local geometry that substitutes the
	// window's contents at a match site.
	Replacement []geom.Rect
}

// FixResult reports an ApplyFixes run.
type FixResult struct {
	Matched  int // sites where a fix's pattern matched
	Applied  int // sites actually rewritten
	Rejected int // sites where the acceptance check failed
	Out      []geom.Rect
}

// ApplyFixes scans the layer for each fix's pattern and rewrites
// matching windows. accept, when non-nil, is called with the candidate
// layer after each site's rewrite and the affected window; returning
// false rolls the site back. Sites are processed in deterministic
// order; overlapping windows are skipped after the first rewrite
// (their geometry changed).
func ApplyFixes(rs []geom.Rect, fixes []Fix, accept func(candidate []geom.Rect, window geom.Rect) bool) FixResult {
	cur := geom.Normalize(rs)
	res := FixResult{}
	if len(fixes) == 0 {
		res.Out = cur
		return res
	}

	// All fixes must share a radius for one scan; group by radius.
	byRadius := map[int64][]Fix{}
	for _, f := range fixes {
		byRadius[f.Match.Radius] = append(byRadius[f.Match.Radius], f)
	}
	var radii []int64
	for r := range byRadius {
		radii = append(radii, r)
	}
	sort.Slice(radii, func(i, j int) bool { return radii[i] < radii[j] })

	var dirty []geom.Rect // windows already rewritten this run
	for _, radius := range radii {
		group := byRadius[radius]
		byHash := map[uint64]*Fix{}
		for i := range group {
			byHash[group[i].Match.CanonHash()] = &group[i]
		}
		ix := geom.NewIndex(4 * radius)
		ix.InsertAll(cur)
		for _, a := range Anchors(cur) {
			p := ExtractAtIndexed(ix, a, radius)
			fx, ok := byHash[p.CanonHash()]
			if !ok {
				continue
			}
			res.Matched++
			window := geom.R(a.X-radius, a.Y-radius, a.X+radius, a.Y+radius)
			overlapsDirty := false
			for _, d := range dirty {
				if d.Overlaps(window) {
					overlapsDirty = true
					break
				}
			}
			if overlapsDirty {
				res.Rejected++
				continue
			}
			// Rewrite: clear the window, insert the translated
			// replacement.
			repl := make([]geom.Rect, 0, len(fx.Replacement))
			for _, r := range fx.Replacement {
				repl = append(repl, r.Translate(geom.Pt(a.X-radius, a.Y-radius)))
			}
			candidate := geom.Union(geom.Subtract(cur, []geom.Rect{window}), repl)
			if accept != nil && !accept(candidate, window) {
				res.Rejected++
				continue
			}
			cur = candidate
			dirty = append(dirty, window)
			res.Applied++
			// The index is stale inside the dirty windows, but those
			// are skipped above; anchors elsewhere still extract
			// correctly because their windows exclude dirty regions
			// (enforced by the overlap check).
		}
	}
	res.Out = cur
	return res
}

// FixFromExample builds a Fix by extracting the bad construct from an
// example layout at an anchor and pairing it with the repaired
// geometry clipped from a second layout at the same anchor.
func FixFromExample(name string, bad, good []geom.Rect, at geom.Point, radius int64) Fix {
	match := ExtractAt(bad, at, radius)
	repaired := ExtractAt(good, at, radius)
	return Fix{Name: name, Match: match, Replacement: repaired.Rects}
}
