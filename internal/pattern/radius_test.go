package pattern

import (
	"testing"

	"repro/internal/geom"
)

// radiusFixture builds a layer where hotspot context only becomes
// distinctive at a larger radius: hot anchors sit at line-end tips
// that have a *second* line end nearby (facing tip), clean anchors at
// isolated line-end tips. Within a small radius both look like a bare
// tip; a radius large enough to see the facing tip separates them.
func radiusFixture() (rs []geom.Rect, hot, clean []geom.Point) {
	// Facing tip pairs (hot): gap 260 between tips.
	for i := int64(0); i < 4; i++ {
		x := i * 3000
		rs = append(rs,
			geom.R(x, 0, x+70, 1000),
			geom.R(x, 1260, x+70, 2260),
		)
		hot = append(hot, geom.Pt(x, 1000))
	}
	// Isolated tips (clean).
	for i := int64(0); i < 4; i++ {
		x := i*3000 + 15000
		rs = append(rs, geom.R(x, 0, x+70, 1000))
		clean = append(clean, geom.Pt(x, 1000))
	}
	return
}

func TestOptimizeRadiusSeparates(t *testing.T) {
	rs, hot, clean := radiusFixture()
	radii := []int64{100, 200, 400}
	evals, best := OptimizeRadius(rs, hot, clean, radii)
	if len(evals) != 3 {
		t.Fatalf("eval count = %d", len(evals))
	}
	// Radius 100: window [tip-100, tip+100] sees only the bare tip on
	// both sides -> full confusion.
	if evals[0].FalseRate != 1 {
		t.Fatalf("small radius should confuse: %+v", evals[0])
	}
	// Radius 400 sees the facing tip -> separation.
	if evals[2].FalseRate != 0 {
		t.Fatalf("large radius should separate: %+v", evals[2])
	}
	if best != 400 {
		t.Fatalf("best radius = %d, want 400", best)
	}
}

func TestOptimizeRadiusPrefersSmallestAdequate(t *testing.T) {
	rs, hot, clean := radiusFixture()
	// 300 already sees the 260 gap's far tip; 400 adds nothing; the
	// optimizer must prefer 300.
	_, best := OptimizeRadius(rs, hot, clean, []int64{300, 400})
	if best != 300 {
		t.Fatalf("best radius = %d, want 300", best)
	}
	// Degenerate inputs.
	if _, b := OptimizeRadius(rs, hot, clean, nil); b != 0 {
		t.Fatalf("empty radii should return 0")
	}
}

func TestPerPatternRadius(t *testing.T) {
	rs, hot, clean := radiusFixture()
	m := PerPatternRadius(rs, hot, clean, []int64{100, 300, 400})
	if len(m) != len(hot) {
		t.Fatalf("per-pattern size = %d", len(m))
	}
	for a, r := range m {
		if r != 300 {
			t.Fatalf("anchor %v got radius %d, want 300", a, r)
		}
	}
}

func TestPDBLifecycle(t *testing.T) {
	// Three designs: pattern A everywhere, B only in the first two
	// (gets fixed), C appears in the last (new).
	a := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 100, 40)}}
	bp := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 40, 40)}}
	cp := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 40, 150)}}

	mkCat := func(pats map[*Pattern]int) *Catalog {
		cat := NewCatalog(100)
		for p, n := range pats {
			for i := 0; i < n; i++ {
				cat.Add(*p, geom.Pt(int64(i), 0))
			}
		}
		return cat
	}

	pdb := NewPDB(100)
	if err := pdb.Ingest("d1", mkCat(map[*Pattern]int{&a: 10, &bp: 5})); err != nil {
		t.Fatal(err)
	}
	if err := pdb.Ingest("d2", mkCat(map[*Pattern]int{&a: 12, &bp: 2})); err != nil {
		t.Fatal(err)
	}
	if err := pdb.Ingest("d3", mkCat(map[*Pattern]int{&a: 9, &cp: 4})); err != nil {
		t.Fatal(err)
	}
	if pdb.Len() != 3 {
		t.Fatalf("pdb size = %d", pdb.Len())
	}
	by := pdb.ByStatus()
	if len(by[Recurring]) != 1 || by[Recurring][0].ID != a.CanonHash() {
		t.Fatalf("recurring wrong: %v", by[Recurring])
	}
	if len(by[Retired]) != 1 || by[Retired][0].ID != bp.CanonHash() {
		t.Fatalf("retired wrong: %v", by[Retired])
	}
	if len(by[New]) != 1 || by[New][0].ID != cp.CanonHash() {
		t.Fatalf("new wrong: %v", by[New])
	}
	if by[Recurring][0].Total() != 31 {
		t.Fatalf("total = %d", by[Recurring][0].Total())
	}
}

func TestPDBTopDetractors(t *testing.T) {
	a := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 100, 40)}}
	bp := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 40, 40)}}
	cat := NewCatalog(100)
	for i := 0; i < 100; i++ {
		cat.Add(a, geom.Pt(0, 0))
	}
	for i := 0; i < 3; i++ {
		cat.Add(bp, geom.Pt(0, 0))
	}
	pdb := NewPDB(100)
	if err := pdb.Ingest("d1", cat); err != nil {
		t.Fatal(err)
	}
	// Uncharacterized: frequency rules.
	top := pdb.TopDetractors(2)
	if len(top) != 2 || top[0].ID != a.CanonHash() {
		t.Fatalf("frequency ranking wrong")
	}
	// Characterize the rare one as a killer: it must jump to #1.
	if !pdb.SetWeight(bp.CanonHash(), 5.0) {
		t.Fatal("SetWeight failed")
	}
	if pdb.SetWeight(12345, 1) {
		t.Fatal("SetWeight accepted unknown id")
	}
	top = pdb.TopDetractors(2)
	if top[0].ID != bp.CanonHash() {
		t.Fatalf("weighted ranking wrong: %v", top[0].ID)
	}
}

func TestPDBRadiusMismatch(t *testing.T) {
	pdb := NewPDB(100)
	if err := pdb.Ingest("d", NewCatalog(200)); err == nil {
		t.Fatal("radius mismatch accepted")
	}
	if got := pdb.TopDetractors(5); got != nil {
		t.Fatal("empty pdb returned detractors")
	}
}
