package pattern

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func sampleLibrary() []*LibEntry {
	return []*LibEntry{
		{
			Name:    "line-end",
			P:       Pattern{Radius: 150, Rects: []geom.Rect{geom.R(0, 0, 70, 150), geom.R(0, 250, 70, 300)}},
			Exact:   true,
			Penalty: 1.5,
		},
		{
			Name:   "blockish",
			P:      Pattern{Radius: 150, Rects: []geom.Rect{geom.R(10, 10, 290, 290)}},
			MinSim: 0.85,
		},
	}
}

func TestLibraryRoundTrip(t *testing.T) {
	lib := sampleLibrary()
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(lib) {
		t.Fatalf("entry count = %d", len(back))
	}
	for i, e := range back {
		o := lib[i]
		if e.Name != o.Name || e.Exact != o.Exact || e.MinSim != o.MinSim || e.Penalty != o.Penalty {
			t.Fatalf("entry %d metadata differs: %+v vs %+v", i, e, o)
		}
		if e.P.Radius != o.P.Radius {
			t.Fatalf("entry %d radius differs", i)
		}
		if e.P.CanonHash() != o.P.CanonHash() {
			t.Fatalf("entry %d geometry differs after round trip", i)
		}
	}
	// The deserialized library behaves in a matcher.
	m, err := NewMatcherFromLibrary(back)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("matcher size = %d", m.Len())
	}
}

func TestReadLibraryErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"rect outside", "rect 0 0 1 1\n"},
		{"no name", "pattern\n"},
		{"bad attr", "pattern p radius=abc\nend\n"},
		{"unknown attr", "pattern p radius=100 bogus=1\nend\n"},
		{"missing radius", "pattern p exact=true\nend\n"},
		{"nested", "pattern p radius=100\npattern q radius=100\n"},
		{"unterminated", "pattern p radius=100\n"},
		{"end without pattern", "end\n"},
		{"bad rect", "pattern p radius=100\nrect 0 0 1\nend\n"},
		{"unknown directive", "wibble\n"},
		{"malformed attr", "pattern p radius\nend\n"},
	}
	for _, c := range cases {
		if _, err := ReadLibrary(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestNewMatcherFromLibraryValidation(t *testing.T) {
	if _, err := NewMatcherFromLibrary(nil); err == nil {
		t.Fatal("empty library accepted")
	}
	mixed := []*LibEntry{
		{Name: "a", P: Pattern{Radius: 100}},
		{Name: "b", P: Pattern{Radius: 200}},
	}
	if _, err := NewMatcherFromLibrary(mixed); err == nil {
		t.Fatal("mixed radii accepted")
	}
}

func TestLibrarySkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\npattern p radius=100 exact=true\nrect 0 0 50 50\nend\n"
	lib, err := ReadLibrary(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) != 1 || lib[0].P.Area() != 2500 {
		t.Fatalf("parse wrong: %+v", lib)
	}
}
