package pattern

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/litho"
	"repro/internal/tech"
)

// The full DFM repair loop, end to end: a layout with a known litho
// hazard (a drawn 30nm neck that pinches away in resist) is scanned
// for hotspots, the hazard construct is repaired with a
// pre-characterized pattern fix (widen the neck to full wire width),
// and the re-scan shows the hotspots gone — with an incremental
// litho acceptance check guarding every rewrite.
func TestFixLoopRemovesLithoHotspots(t *testing.T) {
	tt := tech.N45()

	// Hazard: a 90nm wire necked to 30nm for 200nm of its run.
	mkNeck := func(x int64) []geom.Rect {
		return []geom.Rect{
			geom.R(x, 0, x+90, 1000),
			geom.R(x+30, 1000, x+60, 1200),
			geom.R(x, 1200, x+90, 2200),
		}
	}
	var lay []geom.Rect
	for i := int64(0); i < 3; i++ {
		lay = append(lay, mkNeck(i*2000)...)
	}
	lay = geom.Normalize(lay)

	window := geom.BBoxOf(lay).Bloat(300)
	img := litho.Simulate(lay, window, tt.Optics, litho.Nominal)
	before := img.FindHotspots(42, 42)
	if len(before) == 0 {
		t.Fatalf("neck hazard not detected — fixture broken")
	}

	// The pre-characterized fix: the necked span becomes full-width.
	bad := mkNeck(0)
	good := []geom.Rect{geom.R(0, 0, 90, 2200)}
	fix := FixFromExample("neck-widen", bad, good, geom.Pt(30, 1000), 400)

	applied := ApplyFixes(lay, []Fix{fix}, func(candidate []geom.Rect, w geom.Rect) bool {
		// Incremental acceptance: the rewritten window must print
		// hotspot-free.
		local := litho.Simulate(candidate, w.Bloat(200), tt.Optics, litho.Nominal)
		return len(local.FindHotspots(42, 42)) == 0
	})
	if applied.Applied == 0 {
		t.Fatalf("no fixes applied: matched=%d rejected=%d", applied.Matched, applied.Rejected)
	}

	after := litho.Simulate(applied.Out, window, tt.Optics, litho.Nominal).FindHotspots(42, 42)
	if len(after) >= len(before) {
		t.Fatalf("fix loop did not reduce hotspots: %d -> %d", len(before), len(after))
	}
}
