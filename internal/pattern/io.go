package pattern

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Pattern-library serialization: the text format a foundry would ship
// a DRC Plus deck in. Line-oriented, human-diffable, stdlib-only:
//
//	# godfm patterns v1
//	pattern <name> radius=<nm> exact=<bool> minsim=<f> penalty=<f>
//	rect <x0> <y0> <x1> <y1>
//	end

// WriteLibrary serializes the entries.
func WriteLibrary(w io.Writer, entries []*LibEntry) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# godfm patterns v1")
	for _, e := range entries {
		fmt.Fprintf(bw, "pattern %s radius=%d exact=%t minsim=%g penalty=%g\n",
			e.Name, e.P.Radius, e.Exact, e.MinSim, e.Penalty)
		for _, r := range geom.Normalize(e.P.Rects) {
			fmt.Fprintf(bw, "rect %d %d %d %d\n", r.X0, r.Y0, r.X1, r.Y1)
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

// ReadLibrary parses a library written by WriteLibrary.
func ReadLibrary(r io.Reader) ([]*LibEntry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []*LibEntry
	var cur *LibEntry
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(msg string) error {
			return fmt.Errorf("pattern: line %d: %s: %q", lineNo, msg, line)
		}
		switch f[0] {
		case "pattern":
			if cur != nil {
				return nil, fail("nested pattern")
			}
			if len(f) < 2 {
				return nil, fail("pattern needs a name")
			}
			cur = &LibEntry{Name: f[1]}
			for _, kv := range f[2:] {
				parts := strings.SplitN(kv, "=", 2)
				if len(parts) != 2 {
					return nil, fail("malformed attribute")
				}
				switch parts[0] {
				case "radius":
					v, err := strconv.ParseInt(parts[1], 10, 64)
					if err != nil {
						return nil, fail(err.Error())
					}
					cur.P.Radius = v
				case "exact":
					v, err := strconv.ParseBool(parts[1])
					if err != nil {
						return nil, fail(err.Error())
					}
					cur.Exact = v
				case "minsim":
					v, err := strconv.ParseFloat(parts[1], 64)
					if err != nil {
						return nil, fail(err.Error())
					}
					cur.MinSim = v
				case "penalty":
					v, err := strconv.ParseFloat(parts[1], 64)
					if err != nil {
						return nil, fail(err.Error())
					}
					cur.Penalty = v
				default:
					return nil, fail("unknown attribute")
				}
			}
			if cur.P.Radius <= 0 {
				return nil, fail("pattern needs a positive radius")
			}
		case "rect":
			if cur == nil {
				return nil, fail("rect outside pattern")
			}
			if len(f) != 5 {
				return nil, fail("rect needs 4 coordinates")
			}
			var c [4]int64
			for i := 0; i < 4; i++ {
				v, err := strconv.ParseInt(f[i+1], 10, 64)
				if err != nil {
					return nil, fail(err.Error())
				}
				c[i] = v
			}
			cur.P.Rects = append(cur.P.Rects, geom.R(c[0], c[1], c[2], c[3]))
		case "end":
			if cur == nil {
				return nil, fail("end without pattern")
			}
			out = append(out, cur)
			cur = nil
		default:
			return nil, fail("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("pattern: unterminated pattern %q", cur.Name)
	}
	return out, nil
}

// NewMatcherFromLibrary builds a matcher from deserialized entries;
// all entries must share one radius.
func NewMatcherFromLibrary(entries []*LibEntry) (*Matcher, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("pattern: empty library")
	}
	radius := entries[0].P.Radius
	m := NewMatcher(radius)
	for _, e := range entries {
		if e.P.Radius != radius {
			return nil, fmt.Errorf("pattern: mixed radii %d and %d", radius, e.P.Radius)
		}
		m.AddEntry(e)
	}
	return m, nil
}
