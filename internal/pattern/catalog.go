package pattern

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Class is one pattern equivalence class in a catalog.
type Class struct {
	ID       uint64 // canonical hash
	Rep      Pattern
	Count    int
	Examples []geom.Point // up to maxExamples anchor locations
}

const maxExamples = 8

// Catalog counts pattern classes extracted from one or more layouts —
// the "layout pattern catalog" of the Dai/Capodieci line of work.
type Catalog struct {
	Radius  int64
	classes map[uint64]*Class
	total   int
}

// NewCatalog creates an empty catalog for the given window radius.
func NewCatalog(radius int64) *Catalog {
	return &Catalog{Radius: radius, classes: make(map[uint64]*Class)}
}

// AddLayer extracts patterns at every geometry corner of the layer and
// accumulates them into the catalog. Returns the number of anchors
// processed.
func (c *Catalog) AddLayer(rs []geom.Rect) int {
	norm := geom.Normalize(rs)
	ix := geom.NewIndex(4 * c.Radius)
	ix.InsertAll(norm)
	anchors := Anchors(norm)
	for _, a := range anchors {
		p := ExtractAtIndexed(ix, a, c.Radius)
		c.Add(p, a)
	}
	return len(anchors)
}

// Add accumulates one pattern observed at an anchor.
func (c *Catalog) Add(p Pattern, at geom.Point) {
	id := p.CanonHash()
	cl, ok := c.classes[id]
	if !ok {
		cl = &Class{ID: id, Rep: p}
		c.classes[id] = cl
	}
	cl.Count++
	if len(cl.Examples) < maxExamples {
		cl.Examples = append(cl.Examples, at)
	}
	c.total++
}

// Total returns the number of pattern instances accumulated.
func (c *Catalog) Total() int { return c.total }

// NumClasses returns the number of distinct classes.
func (c *Catalog) NumClasses() int { return len(c.classes) }

// Classes returns the classes sorted by descending count (ties by ID
// for determinism).
func (c *Catalog) Classes() []*Class {
	out := make([]*Class, 0, len(c.classes))
	for _, cl := range c.classes {
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Coverage returns the fraction of all instances covered by the k most
// frequent classes — the heavy-tail statistic behind "the top 10 via
// patterns cover >= 90% of all vias".
func (c *Catalog) Coverage(k int) float64 {
	if c.total == 0 {
		return 0
	}
	cls := c.Classes()
	if k > len(cls) {
		k = len(cls)
	}
	covered := 0
	for _, cl := range cls[:k] {
		covered += cl.Count
	}
	return float64(covered) / float64(c.total)
}

// ClassesFor returns the minimum number of top classes needed to reach
// the given coverage fraction.
func (c *Catalog) ClassesFor(coverage float64) int {
	if c.total == 0 {
		return 0
	}
	need := int(math.Ceil(coverage * float64(c.total)))
	got, k := 0, 0
	for _, cl := range c.Classes() {
		got += cl.Count
		k++
		if got >= need {
			return k
		}
	}
	return k
}

// Freq returns the relative frequency of class id.
func (c *Catalog) Freq(id uint64) float64 {
	if c.total == 0 {
		return 0
	}
	cl, ok := c.classes[id]
	if !ok {
		return 0
	}
	return float64(cl.Count) / float64(c.total)
}

// KLDivergence returns D_KL(c || other) over the union of class ids,
// with add-one smoothing so classes absent from one catalog do not
// produce infinities — the statistic used to compare pattern usage
// between products and flag outlier designs.
func (c *Catalog) KLDivergence(other *Catalog) float64 {
	ids := make(map[uint64]struct{}, len(c.classes)+len(other.classes))
	for id := range c.classes {
		ids[id] = struct{}{}
	}
	for id := range other.classes {
		ids[id] = struct{}{}
	}
	n := float64(len(ids))
	if n == 0 {
		return 0
	}
	pTot := float64(c.total) + n
	qTot := float64(other.total) + n
	var d float64
	for id := range ids {
		var pc, qc float64
		if cl, ok := c.classes[id]; ok {
			pc = float64(cl.Count)
		}
		if cl, ok := other.classes[id]; ok {
			qc = float64(cl.Count)
		}
		p := (pc + 1) / pTot
		q := (qc + 1) / qTot
		d += p * math.Log(p/q)
	}
	return d
}

// Outliers returns the classes whose frequency in c exceeds their
// frequency in the reference catalog by at least factor (and at least
// minCount instances) — the "unexpectedly frequent constructs worth
// monitoring" analysis.
func (c *Catalog) Outliers(ref *Catalog, factor float64, minCount int) []*Class {
	var out []*Class
	for _, cl := range c.Classes() {
		if cl.Count < minCount {
			continue
		}
		pf := c.Freq(cl.ID)
		rf := ref.Freq(cl.ID)
		if rf == 0 || pf/rf >= factor {
			out = append(out, cl)
		}
	}
	return out
}
