package pattern

import (
	"sort"

	"repro/internal/geom"
)

// Incremental similarity clustering of hotspot patterns (Ma, Ghan,
// Capodieci et al., "Automatic hotspot classification using
// pattern-based clustering"): each incoming pattern joins the first
// existing cluster whose representative it resembles at or above the
// threshold, otherwise it seeds a new cluster. The result reduces
// thousands of raw hotspots to a handful of root-cause classes.

// Cluster is one group of similar patterns.
type Cluster struct {
	Rep     Pattern // the first member, used as the match target
	Members []geom.Point
	Count   int
}

// Clusterer accumulates patterns into similarity clusters.
type Clusterer struct {
	Threshold float64 // Jaccard similarity needed to join a cluster
	Oriented  bool    // if set, match under all 8 orientations
	clusters  []*Cluster
}

// NewClusterer creates a clusterer with the given similarity threshold
// in (0, 1].
func NewClusterer(threshold float64, oriented bool) *Clusterer {
	return &Clusterer{Threshold: threshold, Oriented: oriented}
}

// Add places the pattern observed at the given anchor into a cluster
// and returns the cluster index.
func (c *Clusterer) Add(p Pattern, at geom.Point) int {
	sim := Jaccard
	if c.Oriented {
		sim = JaccardOriented
	}
	for i, cl := range c.clusters {
		if sim(cl.Rep, p) >= c.Threshold {
			cl.Members = append(cl.Members, at)
			cl.Count++
			return i
		}
	}
	c.clusters = append(c.clusters, &Cluster{Rep: p, Members: []geom.Point{at}, Count: 1})
	return len(c.clusters) - 1
}

// Clusters returns the clusters sorted by descending size.
func (c *Clusterer) Clusters() []*Cluster {
	out := make([]*Cluster, len(c.clusters))
	copy(out, c.clusters)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// Len returns the number of clusters formed.
func (c *Clusterer) Len() int { return len(c.clusters) }
