// Package pattern implements 2D layout pattern extraction,
// classification, clustering, and full-chip matching — the "DRC Plus"
// methodology (Dai, Yang, Capodieci et al.): where classic design rules
// measure single dimensions, patterns capture whole 2D neighborhoods
// that print badly even though every individual rule passes.
//
// A Pattern is the window-local geometry of one layer inside a square
// window of a given radius around an anchor. Patterns have an exact
// hash, an orientation-invariant canonical hash, and a Jaccard
// similarity used for clustering. A Catalog counts pattern classes
// over one or more designs (coverage curves, KL divergence); a Matcher
// finds library patterns in new layouts.
package pattern

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/geom"
)

// Pattern is the clipped, window-local geometry around an anchor.
// Rects are normalized and expressed with the window's lower-left at
// (0,0); the window spans [0, 2*Radius] on both axes.
type Pattern struct {
	Radius int64
	Rects  []geom.Rect
}

// ExtractAt clips the layer geometry to the window of the given radius
// centered at the anchor and returns the window-local pattern.
// The rect set need not be normalized.
func ExtractAt(rs []geom.Rect, anchor geom.Point, radius int64) Pattern {
	win := geom.R(anchor.X-radius, anchor.Y-radius, anchor.X+radius, anchor.Y+radius)
	clipped := geom.Intersect(rs, []geom.Rect{win})
	local := make([]geom.Rect, len(clipped))
	d := geom.Pt(radius-anchor.X, radius-anchor.Y)
	for i, r := range clipped {
		local[i] = r.Translate(d)
	}
	return Pattern{Radius: radius, Rects: local}
}

// ExtractAtIndexed is ExtractAt against a prebuilt spatial index; it
// avoids rescanning the full layer per anchor on large layouts.
func ExtractAtIndexed(ix *geom.Index, anchor geom.Point, radius int64) Pattern {
	win := geom.R(anchor.X-radius, anchor.Y-radius, anchor.X+radius, anchor.Y+radius)
	var near []geom.Rect
	ix.QueryFunc(win, func(id int, r geom.Rect) bool {
		near = append(near, r)
		return true
	})
	return ExtractAt(near, anchor, radius)
}

// Anchors returns the canonical anchor points for pattern extraction
// over a layer: every boundary-edge endpoint (i.e. every geometry
// corner). Corners are where 2D proximity effects concentrate, which
// is why DRC Plus anchors there.
func Anchors(rs []geom.Rect) []geom.Point {
	edges := geom.BoundaryEdges(rs)
	seen := make(map[geom.Point]struct{}, 2*len(edges))
	var out []geom.Point
	for _, e := range edges {
		for _, p := range [2]geom.Point{e.P0, e.P1} {
			if _, ok := seen[p]; !ok {
				seen[p] = struct{}{}
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Empty reports whether the pattern contains no geometry.
func (p Pattern) Empty() bool { return len(p.Rects) == 0 }

// Area returns the covered area inside the window.
func (p Pattern) Area() int64 { return geom.AreaOf(p.Rects) }

// serialize produces the byte form used for hashing: radius followed by
// the sorted rect coordinates.
func (p Pattern) serialize(rs []geom.Rect) []byte {
	buf := make([]byte, 0, 8+32*len(rs))
	put := func(v int64) {
		for s := 56; s >= 0; s -= 8 {
			buf = append(buf, byte(v>>uint(s)))
		}
	}
	put(p.Radius)
	for _, r := range rs {
		put(r.X0)
		put(r.Y0)
		put(r.X1)
		put(r.Y1)
	}
	return buf
}

// Hash returns the exact (orientation-sensitive) 64-bit hash.
func (p Pattern) Hash() uint64 {
	h := fnv.New64a()
	h.Write(p.serialize(geom.Normalize(p.Rects)))
	return h.Sum64()
}

// orientedRects returns the pattern's normalized rects under one of the
// eight square symmetries, re-anchored to the window's lower-left.
func (p Pattern) orientedRects(o geom.Orient) []geom.Rect {
	t := geom.Transform{Orient: o}
	out := make([]geom.Rect, 0, len(p.Rects))
	for _, r := range p.Rects {
		out = append(out, t.ApplyRect(r))
	}
	out = geom.Normalize(out)
	if len(out) == 0 {
		return out
	}
	// Re-anchor: the transformed window's lower-left moves; shift so
	// the window again spans [0, 2R]^2. The window corners map among
	// (0,0),(2R,0),(0,2R),(2R,2R); the new LL is the min corner.
	w := 2 * p.Radius
	c := [4]geom.Point{
		t.Apply(geom.Pt(0, 0)), t.Apply(geom.Pt(w, 0)),
		t.Apply(geom.Pt(0, w)), t.Apply(geom.Pt(w, w)),
	}
	ll := c[0]
	for _, q := range c[1:] {
		if q.X < ll.X {
			ll.X = q.X
		}
		if q.Y < ll.Y {
			ll.Y = q.Y
		}
	}
	for i := range out {
		out[i] = out[i].Translate(geom.Pt(-ll.X, -ll.Y))
	}
	return out
}

// CanonHash returns the orientation-invariant hash: the minimum exact
// hash over the eight square symmetries. Two patterns that are
// rotations/mirrors of each other share a CanonHash.
func (p Pattern) CanonHash() uint64 {
	best := ^uint64(0)
	for o := geom.R0; o <= geom.MY90; o++ {
		h := fnv.New64a()
		h.Write(p.serialize(p.orientedRects(o)))
		if s := h.Sum64(); s < best {
			best = s
		}
	}
	return best
}

// Jaccard returns the area-overlap similarity of two same-radius
// patterns: |A n B| / |A u B| in [0, 1]. Patterns of different radii
// have similarity 0; two empty patterns have similarity 1.
func Jaccard(a, b Pattern) float64 {
	if a.Radius != b.Radius {
		return 0
	}
	// Area-only sweeps: neither the intersection nor the union
	// geometry is materialized, which matters because clustering calls
	// this for every candidate pair.
	inter := geom.IntersectArea(a.Rects, b.Rects)
	union := geom.UnionArea(a.Rects, b.Rects)
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JaccardOriented returns the maximum Jaccard similarity over the
// eight orientations of b — the metric used when clustering hotspots
// whose cause is orientation-independent.
func JaccardOriented(a, b Pattern) float64 {
	if a.Radius != b.Radius {
		return 0
	}
	best := 0.0
	for o := geom.R0; o <= geom.MY90; o++ {
		ob := Pattern{Radius: b.Radius, Rects: b.orientedRects(o)}
		if s := Jaccard(a, ob); s > best {
			best = s
		}
	}
	return best
}

// String implements fmt.Stringer with a compact summary.
func (p Pattern) String() string {
	return fmt.Sprintf("pattern(r=%d, %d rects, area=%d)", p.Radius, len(p.Rects), p.Area())
}
