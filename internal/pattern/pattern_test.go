package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestExtractAtClipsAndLocalizes(t *testing.T) {
	rs := []geom.Rect{geom.R(100, 100, 300, 140)}
	p := ExtractAt(rs, geom.Pt(200, 120), 50)
	if len(p.Rects) != 1 {
		t.Fatalf("rect count = %d", len(p.Rects))
	}
	// Window [150,70]..[250,170]; clip -> [150,100,250,140];
	// local coords -> [0,30,100,70].
	if p.Rects[0] != geom.R(0, 30, 100, 70) {
		t.Fatalf("local rect = %v", p.Rects[0])
	}
	// Anchor outside all geometry -> empty pattern.
	if !ExtractAt(rs, geom.Pt(5000, 5000), 50).Empty() {
		t.Fatalf("far pattern not empty")
	}
}

func TestExtractIndexedMatchesDirect(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	var rs []geom.Rect
	for i := 0; i < 60; i++ {
		x, y := rnd.Int63n(4000), rnd.Int63n(4000)
		rs = append(rs, geom.R(x, y, x+50+rnd.Int63n(300), y+50+rnd.Int63n(300)))
	}
	norm := geom.Normalize(rs)
	ix := geom.NewIndex(512)
	ix.InsertAll(norm)
	for i := 0; i < 30; i++ {
		a := geom.Pt(rnd.Int63n(4000), rnd.Int63n(4000))
		d := ExtractAt(norm, a, 200)
		x := ExtractAtIndexed(ix, a, 200)
		if d.Hash() != x.Hash() {
			t.Fatalf("indexed extraction differs at %v", a)
		}
	}
}

func TestAnchorsAreCorners(t *testing.T) {
	rs := []geom.Rect{geom.R(0, 0, 100, 100)}
	as := Anchors(rs)
	if len(as) != 4 {
		t.Fatalf("anchor count = %d, want 4 corners", len(as))
	}
	want := map[geom.Point]bool{
		{X: 0, Y: 0}: true, {X: 100, Y: 0}: true,
		{X: 0, Y: 100}: true, {X: 100, Y: 100}: true,
	}
	for _, a := range as {
		if !want[a] {
			t.Errorf("unexpected anchor %v", a)
		}
	}
	// L-shape has 6 corners.
	l := geom.Subtract([]geom.Rect{geom.R(0, 0, 200, 200)}, []geom.Rect{geom.R(100, 100, 200, 200)})
	if got := len(Anchors(l)); got != 6 {
		t.Fatalf("L anchors = %d, want 6", got)
	}
}

func TestHashDiscriminatesAndRepeats(t *testing.T) {
	a := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 50, 200)}}
	b := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 50, 200)}}
	c := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 60, 200)}}
	if a.Hash() != b.Hash() {
		t.Fatalf("identical patterns hash differently")
	}
	if a.Hash() == c.Hash() {
		t.Fatalf("different patterns collide")
	}
	// Normalization-insensitive: split rect same region.
	d := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 50, 100), geom.R(0, 100, 50, 200)}}
	if a.Hash() != d.Hash() {
		t.Fatalf("hash sensitive to rect fragmentation")
	}
}

func TestCanonHashOrientationInvariant(t *testing.T) {
	// An L in the window.
	base := Pattern{Radius: 100, Rects: []geom.Rect{
		geom.R(0, 0, 150, 40), geom.R(0, 40, 40, 150),
	}}
	for o := geom.R0; o <= geom.MY90; o++ {
		rot := Pattern{Radius: 100, Rects: base.orientedRects(o)}
		if rot.CanonHash() != base.CanonHash() {
			t.Fatalf("orientation %v changes CanonHash", o)
		}
	}
	// A genuinely different pattern must not collide.
	other := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 200, 200)}}
	if other.CanonHash() == base.CanonHash() {
		t.Fatalf("distinct patterns share CanonHash")
	}
}

func TestQuickCanonHashInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		var rs []geom.Rect
		n := 1 + rnd.Intn(4)
		for i := 0; i < n; i++ {
			x, y := rnd.Int63n(150), rnd.Int63n(150)
			rs = append(rs, geom.R(x, y, x+10+rnd.Int63n(50), y+10+rnd.Int63n(50)))
		}
		p := Pattern{Radius: 100, Rects: geom.Normalize(rs)}
		o := geom.Orient(rnd.Intn(8))
		q := Pattern{Radius: 100, Rects: p.orientedRects(o)}
		return p.CanonHash() == q.CanonHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestJaccard(t *testing.T) {
	a := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 100, 100)}}
	b := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(50, 0, 150, 100)}}
	// overlap 5000, union 15000.
	if got := Jaccard(a, b); got < 0.333 || got > 0.334 {
		t.Fatalf("Jaccard = %v", got)
	}
	if Jaccard(a, a) != 1 {
		t.Fatalf("self similarity != 1")
	}
	empty := Pattern{Radius: 100}
	if Jaccard(empty, empty) != 1 {
		t.Fatalf("empty-empty similarity != 1")
	}
	if Jaccard(a, empty) != 0 {
		t.Fatalf("a-empty similarity != 0")
	}
	diffR := Pattern{Radius: 50, Rects: a.Rects}
	if Jaccard(a, diffR) != 0 {
		t.Fatalf("different radii must yield 0")
	}
}

func TestJaccardOrientedFindsRotation(t *testing.T) {
	// A horizontal bar vs its vertical rotation: plain Jaccard is low,
	// oriented Jaccard is 1.
	h := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 80, 200, 120)}}
	v := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(80, 0, 120, 200)}}
	if s := Jaccard(h, v); s > 0.5 {
		t.Fatalf("plain Jaccard unexpectedly high: %v", s)
	}
	if s := JaccardOriented(h, v); s != 1 {
		t.Fatalf("oriented Jaccard = %v, want 1", s)
	}
}

func TestCatalogCountsAndCoverage(t *testing.T) {
	cat := NewCatalog(100)
	// Ten instances of pattern A, one of pattern B.
	a := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 100, 40)}}
	b := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 40, 40)}}
	for i := 0; i < 10; i++ {
		cat.Add(a, geom.Pt(int64(i), 0))
	}
	cat.Add(b, geom.Pt(999, 999))
	if cat.Total() != 11 || cat.NumClasses() != 2 {
		t.Fatalf("total=%d classes=%d", cat.Total(), cat.NumClasses())
	}
	cls := cat.Classes()
	if cls[0].Count != 10 || cls[1].Count != 1 {
		t.Fatalf("class order wrong: %v", cls)
	}
	if got := cat.Coverage(1); got < 0.9 || got > 0.91 {
		t.Fatalf("Coverage(1) = %v", got)
	}
	if got := cat.Coverage(99); got != 1 {
		t.Fatalf("Coverage(all) = %v", got)
	}
	if got := cat.ClassesFor(0.9); got != 1 {
		t.Fatalf("ClassesFor(0.9) = %d", got)
	}
	if got := cat.ClassesFor(1.0); got != 2 {
		t.Fatalf("ClassesFor(1.0) = %d", got)
	}
	// Example cap.
	if len(cls[0].Examples) > maxExamples {
		t.Fatalf("examples uncapped")
	}
}

func TestCatalogAddLayer(t *testing.T) {
	// A line/space array: interior corners all share classes.
	var rs []geom.Rect
	for i := int64(0); i < 8; i++ {
		rs = append(rs, geom.R(i*140, 0, i*140+70, 2000))
	}
	cat := NewCatalog(200)
	n := cat.AddLayer(rs)
	if n != len(Anchors(geom.Normalize(rs))) {
		t.Fatalf("anchor count mismatch")
	}
	if cat.Total() != n {
		t.Fatalf("total != anchors")
	}
	// Strong regularity: far fewer classes than instances.
	if cat.NumClasses() >= cat.Total()/2 {
		t.Fatalf("regular array should compress: %d classes / %d instances",
			cat.NumClasses(), cat.Total())
	}
}

func TestKLDivergence(t *testing.T) {
	a := NewCatalog(100)
	b := NewCatalog(100)
	p1 := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 100, 40)}}
	p2 := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 40, 40)}}
	for i := 0; i < 50; i++ {
		a.Add(p1, geom.Pt(0, 0))
		b.Add(p1, geom.Pt(0, 0))
	}
	// Identical catalogs: divergence ~ 0.
	if d := a.KLDivergence(b); d > 1e-9 {
		t.Fatalf("identical catalogs diverge: %v", d)
	}
	// Skew b.
	for i := 0; i < 50; i++ {
		b.Add(p2, geom.Pt(0, 0))
	}
	d1 := a.KLDivergence(b)
	if d1 <= 0 {
		t.Fatalf("skewed catalogs should diverge: %v", d1)
	}
	// KL is asymmetric but both directions must be finite and positive.
	d2 := b.KLDivergence(a)
	if d2 <= 0 {
		t.Fatalf("reverse divergence = %v", d2)
	}
}

func TestOutliers(t *testing.T) {
	ref := NewCatalog(100)
	des := NewCatalog(100)
	common := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 100, 40)}}
	rare := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 40, 40)}}
	for i := 0; i < 100; i++ {
		ref.Add(common, geom.Pt(0, 0))
		des.Add(common, geom.Pt(0, 0))
	}
	ref.Add(rare, geom.Pt(0, 0))
	for i := 0; i < 40; i++ {
		des.Add(rare, geom.Pt(0, 0))
	}
	out := des.Outliers(ref, 10, 5)
	if len(out) != 1 || out[0].ID != rare.CanonHash() {
		t.Fatalf("outliers = %v", out)
	}
}

func TestClusterer(t *testing.T) {
	cl := NewClusterer(0.8, false)
	a := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 100, 100)}}
	aish := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 0, 100, 95)}} // sim 0.95
	b := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(150, 150, 200, 200)}}
	i0 := cl.Add(a, geom.Pt(0, 0))
	i1 := cl.Add(aish, geom.Pt(1, 1))
	i2 := cl.Add(b, geom.Pt(2, 2))
	if i0 != i1 {
		t.Fatalf("similar patterns split: %d vs %d", i0, i1)
	}
	if i2 == i0 {
		t.Fatalf("dissimilar patterns merged")
	}
	if cl.Len() != 2 {
		t.Fatalf("cluster count = %d", cl.Len())
	}
	cs := cl.Clusters()
	if cs[0].Count != 2 || cs[1].Count != 1 {
		t.Fatalf("cluster sizes wrong: %+v", cs)
	}
}

func TestClustererOriented(t *testing.T) {
	cl := NewClusterer(0.9, true)
	h := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(0, 80, 200, 120)}}
	v := Pattern{Radius: 100, Rects: []geom.Rect{geom.R(80, 0, 120, 200)}}
	cl.Add(h, geom.Pt(0, 0))
	cl.Add(v, geom.Pt(1, 1))
	if cl.Len() != 1 {
		t.Fatalf("rotated hotspots should cluster together: %d clusters", cl.Len())
	}
}

func TestMatcherExactAndSimilar(t *testing.T) {
	m := NewMatcher(150)
	// Library: exact line-end-gap pattern anchored at a line-tip corner
	// (scan anchors are geometry corners, so library entries must be
	// corner-anchored too) and a fuzzy big-block pattern.
	lineEnd := ExtractAt([]geom.Rect{geom.R(0, 0, 70, 500), geom.R(0, 600, 70, 1100)}, geom.Pt(0, 500), 150)
	m.AddEntry(&LibEntry{Name: "line-end", P: lineEnd, Exact: true, Penalty: 1})
	blockish := Pattern{Radius: 150, Rects: []geom.Rect{geom.R(0, 0, 300, 300)}}
	m.AddEntry(&LibEntry{Name: "block", P: blockish, MinSim: 0.9, Penalty: 0.5})
	if m.Len() != 2 {
		t.Fatalf("library size = %d", m.Len())
	}

	// Target layout: the same line-end structure somewhere else.
	target := []geom.Rect{geom.R(1000, 1000, 1070, 1500), geom.R(1000, 1600, 1070, 2100)}
	matches := m.ScanLayer(target)
	found := false
	for _, mt := range matches {
		if mt.Entry.Name == "line-end" && mt.Sim == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("exact pattern not found: %v", matches)
	}
}

func TestMatcherNoFalsePositiveOnClean(t *testing.T) {
	m := NewMatcher(150)
	lineEnd := ExtractAt([]geom.Rect{geom.R(0, 0, 70, 500), geom.R(0, 600, 70, 1100)}, geom.Pt(0, 500), 150)
	m.AddEntry(&LibEntry{Name: "line-end", P: lineEnd, Exact: true})
	// A plain wide plate has no line-end construct.
	clean := []geom.Rect{geom.R(0, 0, 5000, 5000)}
	if got := m.ScanLayer(clean); len(got) != 0 {
		t.Fatalf("false positives on clean layout: %v", got)
	}
}
