package pattern

import (
	"sort"

	"repro/internal/geom"
)

// Matcher finds library patterns in a layout — the enforcement half of
// DRC Plus: a foundry ships a library of known-bad 2D constructs and
// physical verification flags every occurrence in the design.

// LibEntry is one library pattern with its metadata.
type LibEntry struct {
	Name    string
	P       Pattern
	Exact   bool    // match by canonical hash; otherwise by similarity
	MinSim  float64 // similarity threshold when Exact is false
	Penalty float64 // severity weight used by DFM scoring
}

// Match is one found occurrence.
type Match struct {
	Entry *LibEntry
	At    geom.Point
	Sim   float64 // 1.0 for exact matches
}

// Matcher scans layouts against a pattern library.
type Matcher struct {
	Radius  int64
	entries []*LibEntry
	byHash  map[uint64][]*LibEntry // exact entries keyed by canonical hash
}

// NewMatcher creates a matcher; all library entries must use the same
// window radius as the matcher.
func NewMatcher(radius int64) *Matcher {
	return &Matcher{Radius: radius, byHash: make(map[uint64][]*LibEntry)}
}

// AddEntry registers a library pattern.
func (m *Matcher) AddEntry(e *LibEntry) {
	m.entries = append(m.entries, e)
	if e.Exact {
		m.byHash[e.P.CanonHash()] = append(m.byHash[e.P.CanonHash()], e)
	}
}

// Len returns the library size.
func (m *Matcher) Len() int { return len(m.entries) }

// ScanLayer extracts a pattern at every geometry corner of the layer
// and reports all library matches, sorted by position.
func (m *Matcher) ScanLayer(rs []geom.Rect) []Match {
	norm := geom.Normalize(rs)
	ix := geom.NewIndex(4 * m.Radius)
	ix.InsertAll(norm)
	var out []Match
	for _, a := range Anchors(norm) {
		p := ExtractAtIndexed(ix, a, m.Radius)
		out = append(out, m.MatchAt(p, a)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At.Less(out[j].At)
		}
		return out[i].Entry.Name < out[j].Entry.Name
	})
	return out
}

// MatchAt tests one extracted pattern against the library.
func (m *Matcher) MatchAt(p Pattern, at geom.Point) []Match {
	var out []Match
	if es, ok := m.byHash[p.CanonHash()]; ok {
		for _, e := range es {
			out = append(out, Match{Entry: e, At: at, Sim: 1})
		}
	}
	for _, e := range m.entries {
		if e.Exact {
			continue
		}
		if s := JaccardOriented(e.P, p); s >= e.MinSim {
			out = append(out, Match{Entry: e, At: at, Sim: s})
		}
	}
	return out
}
