package pattern

import (
	"fmt"
	"sort"
)

// PDB is the pattern database of the yield-learning methodology:
// pattern classes accumulated across multiple designs/technology
// cycles, each carrying a persistent ID, per-design occurrence counts,
// an optional yield-impact weight (assigned once fab data exists), and
// a lifecycle status derived from its occurrence history.
type PDB struct {
	Radius  int64
	entries map[uint64]*PDBEntry
	designs []string // ingest order
}

// PDBEntry is one tracked pattern class.
type PDBEntry struct {
	ID        uint64
	Rep       Pattern
	FirstSeen string
	Counts    map[string]int
	// Weight is the yield-impact weight from failure analysis
	// (0 = not yet characterized).
	Weight float64
}

// Total returns the entry's all-design occurrence count.
func (e *PDBEntry) Total() int {
	n := 0
	for _, c := range e.Counts {
		n += c
	}
	return n
}

// Lifecycle states of a pattern across the design sequence.
type Lifecycle uint8

// Lifecycle values.
const (
	New       Lifecycle = iota // first appeared in the latest design
	Recurring                  // present in the latest and earlier designs
	Retired                    // absent from the latest design (fixed by
	// process learning or designed out by DFM)
)

func (s Lifecycle) String() string {
	switch s {
	case New:
		return "new"
	case Recurring:
		return "recurring"
	}
	return "retired"
}

// NewPDB creates an empty database for the given pattern radius.
func NewPDB(radius int64) *PDB {
	return &PDB{Radius: radius, entries: make(map[uint64]*PDBEntry)}
}

// Ingest merges a design's pattern catalog. The catalog must use the
// database's radius.
func (p *PDB) Ingest(design string, cat *Catalog) error {
	if cat.Radius != p.Radius {
		return fmt.Errorf("pattern: catalog radius %d != pdb radius %d", cat.Radius, p.Radius)
	}
	for _, cl := range cat.Classes() {
		e, ok := p.entries[cl.ID]
		if !ok {
			e = &PDBEntry{ID: cl.ID, Rep: cl.Rep, FirstSeen: design, Counts: make(map[string]int)}
			p.entries[cl.ID] = e
		}
		e.Counts[design] += cl.Count
	}
	p.designs = append(p.designs, design)
	return nil
}

// Len returns the number of tracked classes.
func (p *PDB) Len() int { return len(p.entries) }

// Designs returns the ingest order.
func (p *PDB) Designs() []string { return append([]string{}, p.designs...) }

// SetWeight records a yield-impact weight for a class (from failure
// analysis). Unknown ids are ignored and reported.
func (p *PDB) SetWeight(id uint64, w float64) bool {
	e, ok := p.entries[id]
	if !ok {
		return false
	}
	e.Weight = w
	return true
}

// Status derives the lifecycle state of one entry relative to the
// latest ingested design.
func (p *PDB) Status(e *PDBEntry) Lifecycle {
	if len(p.designs) == 0 {
		return Retired
	}
	latest := p.designs[len(p.designs)-1]
	if e.Counts[latest] == 0 {
		return Retired
	}
	if e.FirstSeen == latest {
		return New
	}
	return Recurring
}

// ByStatus partitions the entries by lifecycle state, each list sorted
// by descending total count.
func (p *PDB) ByStatus() map[Lifecycle][]*PDBEntry {
	out := make(map[Lifecycle][]*PDBEntry)
	for _, e := range p.entries {
		s := p.Status(e)
		out[s] = append(out[s], e)
	}
	for _, list := range out {
		sort.Slice(list, func(i, j int) bool {
			if list[i].Total() != list[j].Total() {
				return list[i].Total() > list[j].Total()
			}
			return list[i].ID < list[j].ID
		})
	}
	return out
}

// TopDetractors returns the n highest-scoring entries in the latest
// design, scored weight*count (uncharacterized entries score by count
// alone with a small factor so characterized killers always rank
// first).
func (p *PDB) TopDetractors(n int) []*PDBEntry {
	if len(p.designs) == 0 {
		return nil
	}
	latest := p.designs[len(p.designs)-1]
	score := func(e *PDBEntry) float64 {
		c := float64(e.Counts[latest])
		if e.Weight > 0 {
			return e.Weight * c
		}
		return 0.001 * c
	}
	var all []*PDBEntry
	for _, e := range p.entries {
		if e.Counts[latest] > 0 {
			all = append(all, e)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		si, sj := score(all[i]), score(all[j])
		if si != sj {
			return si > sj
		}
		return all[i].ID < all[j].ID
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}
