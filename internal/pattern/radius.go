package pattern

import (
	"sort"

	"repro/internal/geom"
)

// Pattern context-radius optimization (the "pattern association tree"
// methodology): a pattern's window radius trades sensitivity against
// specificity. Too small and clean layout matches hotspot classes
// (false alarms); too large and every occurrence is unique (no
// generalization). OptimizeRadius sweeps candidate radii, measures
// the hot/clean class separation at each, and returns the smallest
// radius that achieves the best achievable false rate.

// RadiusEval is the separation quality at one radius.
type RadiusEval struct {
	Radius     int64
	HotClasses int // distinct classes over hotspot anchors
	Ambiguous  int // classes that also occur at clean anchors
	// FalseRate is the fraction of clean anchors whose pattern falls
	// into a hotspot class: the false-alarm rate of an exact-match
	// deck built at this radius.
	FalseRate float64
}

// OptimizeRadius evaluates the candidate radii for the layer geometry
// with labeled hotspot and clean anchors, returning the per-radius
// evaluations (in input order) and the chosen radius.
func OptimizeRadius(rs []geom.Rect, hot, clean []geom.Point, radii []int64) ([]RadiusEval, int64) {
	norm := geom.Normalize(rs)
	if len(radii) == 0 {
		return nil, 0
	}
	maxR := radii[0]
	for _, r := range radii {
		if r > maxR {
			maxR = r
		}
	}
	ix := geom.NewIndex(4 * maxR)
	ix.InsertAll(norm)

	evals := make([]RadiusEval, 0, len(radii))
	for _, r := range radii {
		hotClasses := make(map[uint64]struct{})
		for _, a := range hot {
			hotClasses[ExtractAtIndexed(ix, a, r).CanonHash()] = struct{}{}
		}
		ambiguous := make(map[uint64]struct{})
		falses := 0
		for _, a := range clean {
			h := ExtractAtIndexed(ix, a, r).CanonHash()
			if _, bad := hotClasses[h]; bad {
				falses++
				ambiguous[h] = struct{}{}
			}
		}
		ev := RadiusEval{Radius: r, HotClasses: len(hotClasses), Ambiguous: len(ambiguous)}
		if len(clean) > 0 {
			ev.FalseRate = float64(falses) / float64(len(clean))
		}
		evals = append(evals, ev)
	}

	// Choose the smallest radius achieving the minimum false rate.
	best := evals[0]
	for _, ev := range evals[1:] {
		if ev.FalseRate < best.FalseRate ||
			(ev.FalseRate == best.FalseRate && ev.Radius < best.Radius) {
			best = ev
		}
	}
	return evals, best.Radius
}

// PerPatternRadius assigns each hotspot anchor its own optimal radius:
// the smallest candidate at which the anchor's pattern class contains
// no clean anchors — the per-pattern context sizing that beats a
// fixed-radius deck.
func PerPatternRadius(rs []geom.Rect, hot, clean []geom.Point, radii []int64) map[geom.Point]int64 {
	norm := geom.Normalize(rs)
	if len(radii) == 0 {
		return nil
	}
	sorted := append([]int64{}, radii...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	maxR := sorted[len(sorted)-1]
	ix := geom.NewIndex(4 * maxR)
	ix.InsertAll(norm)

	// Clean class sets per radius.
	cleanClasses := make([]map[uint64]struct{}, len(sorted))
	for i, r := range sorted {
		set := make(map[uint64]struct{}, len(clean))
		for _, a := range clean {
			set[ExtractAtIndexed(ix, a, r).CanonHash()] = struct{}{}
		}
		cleanClasses[i] = set
	}

	out := make(map[geom.Point]int64, len(hot))
	for _, a := range hot {
		chosen := sorted[len(sorted)-1] // fall back to the largest
		for i, r := range sorted {
			h := ExtractAtIndexed(ix, a, r).CanonHash()
			if _, collide := cleanClasses[i][h]; !collide {
				chosen = r
				break
			}
		}
		out[a] = chosen
	}
	return out
}
