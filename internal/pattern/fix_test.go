package pattern

import (
	"testing"

	"repro/internal/geom"
)

// tipFixture builds the line-end-gap hazard (gap 100) and its repaired
// form (tips pulled back to a 180 gap), plus the fix extracted from
// them.
func tipFixture() (fix Fix) {
	bad := []geom.Rect{geom.R(0, 0, 70, 500), geom.R(0, 600, 70, 1100)}
	good := []geom.Rect{geom.R(0, 0, 70, 460), geom.R(0, 640, 70, 1100)}
	return FixFromExample("tip-gap", bad, good, geom.Pt(0, 500), 150)
}

func TestApplyFixesRewritesMatchedSite(t *testing.T) {
	fix := tipFixture()
	// The same construct somewhere else, plus an innocent line.
	target := []geom.Rect{
		geom.R(3000, 1000, 3070, 1500),
		geom.R(3000, 1600, 3070, 2100),
		geom.R(5000, 0, 5070, 2000), // innocent
	}
	res := ApplyFixes(target, []Fix{fix}, nil)
	if res.Matched == 0 || res.Applied == 0 {
		t.Fatalf("fix not applied: %+v", res)
	}
	// The tip gap must now be wider: the region between the original
	// tips (1500-1600) plus the pullback margins must be empty.
	if geom.AreaOf(geom.Intersect(res.Out, []geom.Rect{geom.R(3000, 1470, 3070, 1630)})) != 0 {
		t.Fatalf("tips not pulled back")
	}
	// The lines still exist outside the fix window.
	if !geom.CoversPoint(res.Out, geom.Pt(3035, 1100)) || !geom.CoversPoint(res.Out, geom.Pt(3035, 2000)) {
		t.Fatalf("line bodies damaged")
	}
	// The innocent line is untouched.
	if geom.AreaOf(geom.Intersect(res.Out, []geom.Rect{geom.R(5000, 0, 5070, 2000)})) != 70*2000 {
		t.Fatalf("innocent line modified")
	}
}

func TestApplyFixesAcceptCallback(t *testing.T) {
	fix := tipFixture()
	target := []geom.Rect{
		geom.R(3000, 1000, 3070, 1500),
		geom.R(3000, 1600, 3070, 2100),
	}
	// Rejecting accept: nothing changes.
	res := ApplyFixes(target, []Fix{fix}, func(candidate []geom.Rect, w geom.Rect) bool {
		return false
	})
	if res.Applied != 0 || res.Rejected == 0 {
		t.Fatalf("rejection not honored: %+v", res)
	}
	if geom.AreaOf(geom.Xor(res.Out, geom.Normalize(target))) != 0 {
		t.Fatalf("geometry changed despite rejection")
	}
	// Accepting callback receives the affected window.
	var gotWindow geom.Rect
	ApplyFixes(target, []Fix{fix}, func(candidate []geom.Rect, w geom.Rect) bool {
		gotWindow = w
		return true
	})
	if !gotWindow.Contains(geom.Pt(3000, 1500)) {
		t.Fatalf("window %v does not cover the match site", gotWindow)
	}
}

func TestApplyFixesSkipsOverlappingSites(t *testing.T) {
	fix := tipFixture()
	// Two constructs close enough that their windows overlap: only one
	// may be rewritten per pass.
	target := []geom.Rect{
		geom.R(0, 1000, 70, 1500), geom.R(0, 1600, 70, 2100),
		geom.R(200, 1000, 270, 1500), geom.R(200, 1600, 270, 2100),
	}
	res := ApplyFixes(target, []Fix{fix}, nil)
	if res.Applied+res.Rejected < 2 {
		t.Fatalf("sites unaccounted: %+v", res)
	}
	if res.Applied < 1 {
		t.Fatalf("no site fixed: %+v", res)
	}
}

func TestApplyFixesNoMatchNoChange(t *testing.T) {
	fix := tipFixture()
	clean := []geom.Rect{geom.R(0, 0, 5000, 5000)}
	res := ApplyFixes(clean, []Fix{fix}, nil)
	if res.Matched != 0 || res.Applied != 0 {
		t.Fatalf("phantom match: %+v", res)
	}
	if geom.AreaOf(geom.Xor(res.Out, clean)) != 0 {
		t.Fatalf("clean layout changed")
	}
	// Empty fix list is the identity.
	res = ApplyFixes(clean, nil, nil)
	if geom.AreaOf(geom.Xor(res.Out, clean)) != 0 {
		t.Fatalf("no-fix run changed geometry")
	}
}
