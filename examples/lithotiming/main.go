// Litho-aware timing: the "advanced timing analysis based on post-OPC
// extraction" flow. Extract equivalent channel lengths from the
// simulated printing of each standard cell's gates (after model-based
// OPC), back-annotate a random logic netlist, and compare against the
// drawn-dimension signoff: worst slack movement, path-rank churn, and
// leakage error.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/dfm"
	"repro/internal/litho"
	"repro/internal/sta"
	"repro/internal/tech"
)

func main() {
	t := tech.N45()
	nl := circuit.RandomLogic(10, 14, 16, 9)
	lib := sta.DefaultLib()

	// Drawn-dimension signoff.
	drawn := sta.Analyze(nl, lib, sta.Lengths{}, 0)
	period := drawn.Arrival[drawn.Critical[len(drawn.Critical)-1]]
	fmt.Printf("netlist: %d gates, %d endpoints; drawn critical path %.1f ps\n",
		len(nl.Gates), len(nl.POs), period)

	// Post-OPC extraction at nominal and defocused conditions.
	for _, cond := range []litho.Condition{litho.Nominal, {Defocus: 80, Dose: 1}} {
		gl, err := dfm.ExtractGateLengths(context.Background(), t, cond, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncondition defocus=%.0fnm dose=%.2f:\n", cond.Defocus, cond.Dose)
		for _, gt := range []circuit.GateType{circuit.Inv, circuit.Nand2, circuit.Nor2, circuit.Buf} {
			fmt.Printf("  %-6s L_delay=%.2fnm  L_leak=%.2fnm\n", gt, gl.Delay[gt], gl.Leak[gt])
		}

		silicon := sta.Analyze(nl, lib, sta.TypeLengths(nl, gl.Delay, gl.Leak), period)
		churn := sta.RankDistance(sta.PathRank(nl, drawn), sta.PathRank(nl, silicon))
		fmt.Printf("  WNS vs drawn signoff: %+.1f ps (%.1f%% of period)\n",
			silicon.WNS, 100*silicon.WNS/period)
		fmt.Printf("  leakage: %.3g A (drawn model %.3g A)\n", silicon.LeakTotal, drawn.LeakTotal)
		fmt.Printf("  speed-path rank churn: %.1f%% pairwise inversions\n", 100*churn)
	}

	// Monte Carlo with litho-derived systematic means.
	gl, err := dfm.ExtractGateLengths(context.Background(), t, litho.Nominal, true)
	if err != nil {
		log.Fatal(err)
	}
	st := sta.MonteCarlo(nl, lib, sta.Variation{SigmaL: 1.5, SystematicL: gl.Delay}, 1.05*period, 300, 5)
	fmt.Printf("\nMonte Carlo (300 trials, sigmaL=1.5nm, litho-systematic means, period=1.05x):\n")
	fmt.Printf("  WNS mean %.1f ps, sigma %.1f ps, min %.1f ps\n", st.WNSMean, st.WNSSigma, st.WNSMin)
	fmt.Printf("  leakage mean %.3g A, max %.3g A\n", st.LeakMean, st.LeakMax)
}
