// Hotspot flow: the DRC Plus methodology end to end. Litho-simulate a
// "test chip" design at a stressed process corner to find printability
// hotspots, cluster them into root-cause classes, extract a pattern
// library, then scan a *different* "product" design with the library
// and compare capture against plain DRC.
package main

import (
	"fmt"
	"log"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/pattern"
	"repro/internal/tech"
)

const radius = 200

func m1Layer(t *tech.Tech, seed int64) []geom.Rect {
	l, err := layout.GenerateBlock(t, layout.BlockOpts{
		Rows: 2, RowWidth: 6000, Nets: 8, MaxFan: 3, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return geom.Normalize(layout.ByLayer(l.Flatten())[tech.Metal1])
}

func main() {
	t := tech.N45()
	stress := litho.Condition{Defocus: 110, Dose: 0.95}

	// Phase 1: hotspot discovery on the test chip.
	train := m1Layer(t, 11)
	trainHS := litho.ScanLayer(train, t, tech.Metal1, stress, 0, 0)
	fmt.Printf("test chip: %d hotspots at defocus %.0f / dose %.2f\n",
		len(trainHS), stress.Defocus, stress.Dose)

	// Phase 2: cluster the hotspots into root-cause classes.
	ix := geom.NewIndex(4 * radius)
	ix.InsertAll(train)
	anchors := pattern.Anchors(train)
	cl := pattern.NewClusterer(0.75, true)
	var pats []pattern.Pattern
	var ats []geom.Point
	for _, h := range trainHS {
		a, ok := nearest(anchors, h.Box.Center())
		if !ok {
			continue
		}
		p := pattern.ExtractAtIndexed(ix, a, radius)
		if p.Empty() {
			continue
		}
		cl.Add(p, a)
		pats = append(pats, p)
		ats = append(ats, a)
	}
	fmt.Printf("clustered into %d pattern classes:\n", cl.Len())
	for i, c := range cl.Clusters() {
		fmt.Printf("  class %d: %d occurrences, rep %v\n", i, c.Count, c.Rep)
	}

	// Phase 3: build the exact-match library and scan the product.
	m := pattern.NewMatcher(radius)
	for i, p := range pats {
		m.AddEntry(&pattern.LibEntry{Name: fmt.Sprintf("hs%d", i), P: p, Exact: true})
	}
	test := m1Layer(t, 12)
	testHS := litho.ScanLayer(test, t, tech.Metal1, stress, 0, 0)
	matches := m.ScanLayer(test)

	caught := 0
	for _, h := range testHS {
		for _, mt := range matches {
			if h.Box.Center().ChebyshevDist(mt.At) <= 400 {
				caught++
				break
			}
		}
	}
	// Plain DRC baseline.
	shapes := make([]layout.Shape, len(test))
	for i, r := range test {
		shapes[i] = layout.Shape{Layer: tech.Metal1, R: r, Net: layout.NoNet}
	}
	res := drc.StandardDeck(t).Run(drc.NewContext(t, shapes))
	drcCaught := 0
	for _, h := range testHS {
		for _, v := range res.Violations {
			if v.Marker.Bloat(300).Overlaps(h.Box) {
				drcCaught++
				break
			}
		}
	}

	fmt.Printf("\nproduct design: %d hotspots (ground truth)\n", len(testHS))
	fmt.Printf("  plain DRC capture:   %d/%d\n", drcCaught, len(testHS))
	fmt.Printf("  DRC Plus capture:    %d/%d (%d library patterns, %d matches flagged)\n",
		caught, len(testHS), m.Len(), len(matches))
}

func nearest(anchors []geom.Point, p geom.Point) (geom.Point, bool) {
	best := geom.Point{}
	bestD := int64(400) + 1
	for _, a := range anchors {
		if d := a.ChebyshevDist(p); d < bestD {
			best, bestD = a, d
		}
	}
	return best, bestD <= 400
}
