// DPT flow: the double-patterning readiness study the 2008 panelists
// saw on the horizon. Decompose metal layers at progressively tighter
// pitches, count odd-cycle conflicts, attempt stitch repair, and score
// the decompositions — showing where single-exposure layout styles
// stop being decomposable.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/dpt"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

func main() {
	t := tech.N45()

	// Part 1: regular line/space arrays always decompose.
	fmt.Println("regular line/space (width 50):")
	fmt.Printf("%8s %10s %9s %9s %9s\n", "pitch", "conflicts", "stitches", "balance", "score")
	for _, pitch := range []int64{400, 300, 240, 200, 160} {
		cell := layout.LineSpace(t, tech.Metal2, 50, pitch-50, 4000, 12)
		res := dpt.Decompose(cell.LayerRects(tech.Metal2), 160, true, 40)
		s := res.ScoreDecomposition(40)
		fmt.Printf("%8d %10d %9d %9.3f %9.3f\n",
			pitch, len(res.Conflicts), res.Stitches, 1-res.DensityBalance(), s.Composite)
	}

	// Part 2: 2D random contact-style fields develop native conflicts.
	fmt.Println("\nrandom 2D contact field (80nm squares):")
	fmt.Printf("%8s %10s %9s %9s %9s\n", "pitch", "conflicts", "stitches", "balance", "score")
	for _, pitch := range []int64{400, 300, 250, 200, 170} {
		rnd := rand.New(rand.NewSource(3))
		var rs []geom.Rect
		for x := int64(0); x < 10; x++ {
			for y := int64(0); y < 10; y++ {
				ox := rnd.Int63n(pitch / 4)
				rs = append(rs, geom.R(x*pitch+ox+y*pitch/2, y*pitch, x*pitch+ox+y*pitch/2+80, y*pitch+80))
			}
		}
		res := dpt.Decompose(rs, 160, true, 40)
		s := res.ScoreDecomposition(40)
		fmt.Printf("%8d %10d %9d %9.3f %9.3f\n",
			pitch, len(res.Conflicts), res.Stitches, 1-res.DensityBalance(), s.Composite)
	}

	// Part 3: a real routed layer at its native pitch.
	l, err := layout.GenerateBlock(t, layout.BlockOpts{Rows: 2, RowWidth: 8000, Nets: 12, MaxFan: 3, Seed: 5})
	if err != nil {
		panic(err)
	}
	m2 := layout.ByLayer(l.Flatten())[tech.Metal2]
	// Same-mask spacing above the drawn minimum forces decomposition.
	res := dpt.Decompose(m2, 120, true, 40)
	s := res.ScoreDecomposition(40)
	fmt.Printf("\nrouted metal2 (same-mask min 120): features=%d conflicts=%d stitches=%d composite=%.3f\n",
		len(res.Features), len(res.Conflicts), res.Stitches, s.Composite)
}
