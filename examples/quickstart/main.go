// Quickstart: generate a placed-and-routed block, run the three
// baseline analyses every DFM flow starts from — design rule checking,
// printability hotspot scanning, and defect-limited yield estimation —
// and print a one-page summary.
package main

import (
	"fmt"
	"log"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/lvs"
	"repro/internal/tech"
	yieldpkg "repro/internal/yield"
)

func main() {
	t := tech.N45()
	fmt.Printf("node %s: metal1 half-pitch %dnm, k1 = %.2f\n", t.Name, t.HalfPitch(), t.K1())

	// 1. Generate a synthetic placed-and-routed block.
	l, err := layout.GenerateBlock(t, layout.BlockOpts{
		Rows: 4, RowWidth: 12000, Nets: 25, MaxFan: 4, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	flat := l.Flatten()
	st := layout.Summarize(flat)
	fmt.Printf("block %s: %d shapes, %d nets, extent %v\n",
		l.Top.Name, st.Shapes, st.NetCount, st.BBox)

	// 2. DRC signoff + geometric connectivity check.
	res := drc.StandardDeck(t).Run(drc.NewContext(t, flat))
	fmt.Printf("DRC: %d violations\n", res.Count())
	lrep := lvs.CompareScoped(flat, lvs.Extract(flat), l.Top.MaxNet())
	fmt.Printf("LVS: %d shorts, %d opens (opens = connections the router dropped)\n",
		len(lrep.Shorts), len(lrep.Opens))

	// 3. Printability: scan metal1 at a stressed process corner.
	m1 := geom.Normalize(layout.ByLayer(flat)[tech.Metal1])
	hs := litho.ScanLayer(m1, t, tech.Metal1, litho.Condition{Defocus: 110, Dose: 0.95}, 0, 0)
	fmt.Printf("litho hotspots at defocus 110nm / dose 0.95: %d\n", len(hs))
	for i, h := range hs {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(hs)-5)
			break
		}
		fmt.Printf("  %v\n", h)
	}

	// 4. Defect-limited (random) yield.
	rep := yieldpkg.AnalyzeChip(flat, t)
	fmt.Printf("random-defect yield: %.5f (vias: %d, redundant pairs: %d)\n",
		rep.YTotal, rep.NVias, rep.NPairs)
	for _, lr := range rep.Layers {
		fmt.Printf("  %-8s shortAC %.3g nm2  openAC %.3g nm2  Y %.5f\n",
			lr.Layer, lr.ShortAC, lr.OpenAC, lr.YCombined)
	}

	// 5. Systematic (design-induced) yield from the hotspot count, and
	// the wafer economics that make the DFM argument concrete.
	sites := yieldpkg.UniformSites(len(hs), yieldpkg.SeverityToPFail(0.4, 0.01))
	ySys := yieldpkg.SystematicYield(sites)
	yTotal := yieldpkg.TotalYield(rep.YTotal, sites)
	fmt.Printf("systematic yield (from %d hotspots): %.5f; total: %.5f\n",
		len(hs), ySys, yTotal)

	w := yieldpkg.Wafer300(8, 8) // an 8x8 mm die
	extra, costChange := w.YieldDelta(5000, yTotal, rep.YTotal)
	fmt.Printf("wafer economics (300mm, $5000/wafer): fixing every hotspot buys %.0f die/wafer (%.1f%% cost per die)\n",
		extra, 100*costChange)
}
