// Via yield: the redundant-via DFM flow. Generate routed blocks of
// increasing size, insert second cuts where legal, and tabulate the
// via-failure yield before and after plus the full-chip extrapolation
// — the numbers behind the "redundant vias are free yield" claim.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dvia"
	"repro/internal/layout"
	"repro/internal/tech"
	yieldpkg "repro/internal/yield"
)

func main() {
	t := tech.N45()
	t.Defects.ViaFailProb = 1e-5 // a pessimistic fab week

	fmt.Printf("%-10s %8s %8s %10s %12s %12s %10s\n",
		"block", "vias", "singles", "doubled", "Yvia before", "Yvia after", "coverage")
	for _, rows := range []int{2, 4, 6} {
		opts := layout.BlockOpts{Rows: rows, RowWidth: 10000, Nets: 10 * rows, MaxFan: 4, Seed: int64(rows)}
		l, err := layout.GenerateBlock(t, opts)
		if err != nil {
			log.Fatal(err)
		}
		flat := l.Flatten()
		g, err := dvia.EvaluateInsertion(context.Background(), flat, t)
		if err != nil {
			log.Fatal(err)
		}
		nv := g.SinglesBefore + 2*g.PairsBefore
		fmt.Printf("%-10s %8d %8d %10d %12.6f %12.6f %9.1f%%\n",
			fmt.Sprintf("rows=%d", rows), nv, g.SinglesBefore, g.AddedCuts,
			g.Before, g.After, 100*g.Report.Coverage)
	}

	// Full-chip extrapolation: what the block statistics imply at 1e8
	// vias.
	opts := layout.BlockOpts{Rows: 6, RowWidth: 10000, Nets: 60, MaxFan: 4, Seed: 6}
	l, err := layout.GenerateBlock(t, opts)
	if err != nil {
		log.Fatal(err)
	}
	g, err := dvia.EvaluateInsertion(context.Background(), l.Flatten(), t)
	if err != nil {
		log.Fatal(err)
	}
	const (
		chipVias = 1e8
		pChip    = 1e-9 // production-grade per-via failure rate
	)
	frac := func(singles, pairs int) float64 {
		n := singles + 2*pairs
		if n == 0 {
			return 1
		}
		return float64(singles) / float64(n)
	}
	chipY := func(fracSingle float64) float64 {
		return yieldpkg.ViaYield(int(fracSingle*chipVias), int((1-fracSingle)/2*chipVias), pChip)
	}
	before := chipY(frac(g.SinglesBefore, g.PairsBefore))
	after := chipY(frac(g.SinglesAfter, g.PairsAfter))
	fmt.Printf("\nfull-chip extrapolation (%.0g vias, p_fail %.0e):\n", chipVias, pChip)
	fmt.Printf("  via-limited yield: %.4f -> %.4f\n", before, after)
	fmt.Printf("  cost: %d extra cuts and %d landing bars on this block; no routed-area growth\n",
		g.AddedCuts, len(g.Report.AddedShapes)-g.AddedCuts)
}
