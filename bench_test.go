package repro

// Benchmark harness: one benchmark per experiment in DESIGN.md's
// index. Each benchmark times the experiment's core computation and,
// on its first iteration, prints the table or series the experiment
// reports (EXPERIMENTS.md records the measured rows).
//
// Run all of them with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/dfm"
	"repro/internal/dpt"
	"repro/internal/drc"
	"repro/internal/dvia"
	"repro/internal/fill"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/metrology"
	"repro/internal/obs"
	"repro/internal/opc"
	"repro/internal/pattern"
	"repro/internal/repair"
	"repro/internal/sta"
	"repro/internal/surrogate"
	"repro/internal/tech"
	"repro/internal/tiling"
	yieldpkg "repro/internal/yield"
)

var printOnce sync.Map

// report prints the experiment's rows exactly once across -benchtime
// iterations.
func report(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

// BenchmarkT1RedundantVia — T1: redundant-via insertion yield gain vs
// cost across block sizes.
func BenchmarkT1RedundantVia(b *testing.B) {
	t := tech.N45()
	t.Defects.ViaFailProb = 1e-5
	for i := 0; i < b.N; i++ {
		var rows []string
		for _, r := range []int{2, 4, 6} {
			l, err := layout.GenerateBlock(t, layout.BlockOpts{
				Rows: r, RowWidth: 10000, Nets: 10 * r, MaxFan: 4, Seed: int64(r),
			})
			if err != nil {
				b.Fatal(err)
			}
			g, err := dvia.EvaluateInsertion(context.Background(), l.Flatten(), t)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, fmt.Sprintf("T1 rows=%d vias=%d singles=%d doubled=%d Yvia %.6f -> %.6f",
				r, g.SinglesBefore+2*g.PairsBefore, g.SinglesBefore, g.AddedCuts, g.Before, g.After))
		}
		report("T1", func() {
			for _, s := range rows {
				fmt.Println(s)
			}
		})
	}
}

// BenchmarkT2DRCPlusCapture — T2: hotspot capture, plain DRC vs DRC
// Plus pattern matching.
func BenchmarkT2DRCPlusCapture(b *testing.B) {
	t := tech.N45()
	for i := 0; i < b.N; i++ {
		o := dfm.EvalDRCPlus(context.Background(), t, 11, 12)
		if o.Err != nil {
			b.Fatal(o.Err)
		}
		report("T2", func() {
			p, _ := o.Primary()
			fmt.Printf("T2 capture: plain DRC %.2f -> DRC Plus %.2f (%s)\n",
				p.Before, p.After, o.CostNote)
		})
	}
}

// BenchmarkT3OPCAccuracy — T3: EPE statistics for no / rule-based /
// model-based OPC.
func BenchmarkT3OPCAccuracy(b *testing.B) {
	t := tech.N45()
	for i := 0; i < b.N; i++ {
		o := dfm.EvalOPCAccuracy(context.Background(), t)
		if o.Err != nil {
			b.Fatal(o.Err)
		}
		report("T3", func() {
			for _, m := range o.Metrics {
				fmt.Printf("T3 %s: %.2f -> %.2f %s\n", m.Name, m.Before, m.After, m.Unit)
			}
		})
	}
}

// BenchmarkF1ProcessWindow — F1: focus-exposure window of an isolated
// line with and without SRAFs.
func BenchmarkF1ProcessWindow(b *testing.B) {
	t := tech.N45()
	drawn := []geom.Rect{geom.R(0, 0, 70, 3000)}
	window := geom.R(-450, 1200, 550, 1800)
	defocus := []float64{0, 20, 40, 60, 80, 100, 120, 140, 160}
	dose := []float64{0.92, 0.96, 1.0, 1.04, 1.08}
	for i := 0; i < b.N; i++ {
		measure := func(mask []geom.Rect, tag string) float64 {
			cd0, ok := litho.Simulate(mask, window, t.Optics, litho.Nominal).CDAt(35, 1500, true)
			if !ok {
				b.Fatalf("%s: no print", tag)
			}
			pts := litho.FEMatrix(mask, window, t.Optics, 35, 1500, true,
				litho.CDSpec{Target: cd0, Tol: 0.10}, defocus, dose)
			dof := litho.DepthOfFocus(pts, defocus)
			report("F1-"+tag, func() {
				fmt.Printf("F1 %s: nominal CD %.1fnm, DOF %.0fnm, EL@0 %.2f\n",
					tag, cd0, dof, litho.ExposureLatitude(pts, 0))
				for _, f := range defocus {
					for _, p := range pts {
						if p.Cond.Defocus == f && p.Cond.Dose == 1.0 {
							fmt.Printf("F1 %s f=%3.0f CD=%.1f ok=%v\n", tag, f, p.CD, p.OK)
						}
					}
				}
			})
			return dof
		}
		bare := geom.Normalize(drawn)
		dofB := measure(bare, "bare")
		dofS := measure(opc.WithSRAF(bare, opc.DefaultSRAFOpts()), "sraf")
		if dofS < dofB {
			b.Fatalf("SRAF shrank DOF: %v -> %v", dofB, dofS)
		}
	}
}

// BenchmarkF2CriticalArea — F2: critical area vs defect size, and
// yield vs defect density.
func BenchmarkF2CriticalArea(b *testing.B) {
	t := tech.N45()
	l, err := layout.GenerateBlock(t, layout.BlockOpts{Rows: 3, RowWidth: 10000, Nets: 20, MaxFan: 3, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	flat := l.Flatten()
	nets := layout.NetsOn(flat, tech.Metal1)
	d := yieldpkg.SizeDist{X0: t.Defects.X0, XMax: t.Defects.XMax}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve := yieldpkg.Curve(d, func(x int64) int64 {
			return yieldpkg.ShortCriticalArea(nets, x)
		}, 8)
		// Combined average critical area over the routing layers.
		var ac float64
		for _, lay := range []tech.Layer{tech.Metal1, tech.Metal2, tech.Metal3} {
			lr := yieldpkg.AnalyzeLayer(flat, lay, t.Defects)
			ac += lr.ShortAC + lr.OpenAC
		}
		report("F2", func() {
			for _, p := range curve {
				fmt.Printf("F2 CA_short_m1(x=%.0fnm) = %d nm2\n", p.X, p.CA)
			}
			// Yield-vs-density falloff shows at chip scale: extrapolate
			// the block's average critical area to a 0.5 cm^2 die.
			blockArea := float64(geom.BBoxOf(layout.ByLayer(flat)[tech.Metal1]).Area())
			scale := 0.5e14 / blockArea // 0.5 cm^2 in nm^2
			for _, d0 := range []float64{0.1, 0.25, 0.5, 1.0, 2.0} {
				fmt.Printf("F2 chip yield(D0=%.2f/cm2) Poisson=%.4f NB=%.4f\n",
					d0, yieldpkg.Poisson(ac*scale, d0), yieldpkg.NegBinomial(ac*scale, d0, t.Defects.Alpha))
			}
		})
	}
}

// BenchmarkT4FillDensity — T4: dummy-fill density uniformity and CMP
// planarity, with area cost.
func BenchmarkT4FillDensity(b *testing.B) {
	t := tech.N45()
	for i := 0; i < b.N; i++ {
		o := dfm.EvalDummyFill(context.Background(), t, layout.BlockOpts{Rows: 3, RowWidth: 10000, Nets: 15, MaxFan: 3, Seed: 11})
		if o.Err != nil {
			b.Fatal(o.Err)
		}
		report("T4", func() {
			for _, m := range o.Metrics {
				fmt.Printf("T4 %s: %.4f -> %.4f %s\n", m.Name, m.Before, m.After, m.Unit)
			}
			fmt.Printf("T4 cost: %.2f%% added metal (%s)\n", 100*o.CostFrac, o.CostNote)
		})
	}
}

// BenchmarkT5LithoTiming — T5: drawn vs post-OPC-extracted timing.
func BenchmarkT5LithoTiming(b *testing.B) {
	t := tech.N45()
	for i := 0; i < b.N; i++ {
		o := dfm.EvalLithoTiming(context.Background(), t, 9)
		if o.Err != nil {
			b.Fatal(o.Err)
		}
		report("T5", func() {
			for _, m := range o.Metrics {
				fmt.Printf("T5 %s: %.4f %s\n", m.Name, m.Before, m.Unit)
			}
		})
	}
}

// BenchmarkF3PatternCoverage — F3: layout pattern catalog coverage
// curves and cross-design KL divergence. The headline series follows
// the source study exactly: via-enclosure patterns (metal2 context
// around every via1 cut); an M1-corner catalog is reported as the
// irregular-layer contrast.
func BenchmarkF3PatternCoverage(b *testing.B) {
	t := tech.N45()
	mk := func(seed int64) (m1, m2 []geom.Rect, vias []geom.Rect) {
		l, err := layout.GenerateBlock(t, layout.BlockOpts{Rows: 4, RowWidth: 12000, Nets: 40, MaxFan: 4, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		by := layout.ByLayer(l.Flatten())
		return by[tech.Metal1], by[tech.Metal2], by[tech.Via1]
	}
	m1A, m2A, viasA := mk(1)
	_, m2B, viasB := mk(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Via-enclosure catalogs: metal2 context at each via center.
		viaCat := func(m2, vias []geom.Rect) *pattern.Catalog {
			cat := pattern.NewCatalog(150)
			norm := geom.Normalize(m2)
			ix := geom.NewIndex(600)
			ix.InsertAll(norm)
			for _, v := range vias {
				cat.Add(pattern.ExtractAtIndexed(ix, v.Center(), 150), v.Center())
			}
			return cat
		}
		catA := viaCat(m2A, viasA)
		catB := viaCat(m2B, viasB)
		cornerCat := pattern.NewCatalog(200)
		cornerCat.AddLayer(m1A)
		report("F3", func() {
			fmt.Printf("F3 via-enclosure catalog A: %d vias, %d classes\n", catA.Total(), catA.NumClasses())
			for _, k := range []int{1, 5, 10, 20} {
				fmt.Printf("F3 via coverage(top %d) = %.3f\n", k, catA.Coverage(k))
			}
			fmt.Printf("F3 via classes for 90%% coverage: %d\n", catA.ClassesFor(0.90))
			fmt.Printf("F3 KL(A||B) = %.4f, KL(B||A) = %.4f\n",
				catA.KLDivergence(catB), catB.KLDivergence(catA))
			fmt.Printf("F3 outliers in A vs B (10x, >=5): %d\n", len(catA.Outliers(catB, 10, 5)))
			fmt.Printf("F3 m1-corner catalog: %d instances, %d classes, top-10 coverage %.3f\n",
				cornerCat.Total(), cornerCat.NumClasses(), cornerCat.Coverage(10))
		})
	}
}

// BenchmarkT6RestrictedRules — T6: restricted design rules, PV-band
// robustness vs area.
func BenchmarkT6RestrictedRules(b *testing.B) {
	t := tech.N45()
	for i := 0; i < b.N; i++ {
		o := dfm.EvalRestrictedRules(context.Background(), t)
		if o.Err != nil {
			b.Fatal(o.Err)
		}
		report("T6", func() {
			for _, m := range o.Metrics {
				fmt.Printf("T6 %s: %.4g -> %.4g %s\n", m.Name, m.Before, m.After, m.Unit)
			}
			fmt.Printf("T6 area cost: %.2f%%\n", 100*o.CostFrac)
		})
	}
}

// BenchmarkF4MonteCarloSTA — F4: timing/leakage distributions, nominal
// vs litho-systematic means.
func BenchmarkF4MonteCarloSTA(b *testing.B) {
	t := tech.N45()
	nl := circuit.RandomLogic(10, 12, 14, 9)
	lib := sta.DefaultLib()
	nom := sta.Analyze(nl, lib, sta.Lengths{}, 0)
	period := 1.05 * nom.Arrival[nom.Critical[len(nom.Critical)-1]]
	gl, err := dfm.ExtractGateLengths(context.Background(), t, litho.Nominal, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := sta.MonteCarlo(nl, lib, sta.Variation{SigmaL: 1.5}, period, 200, 1)
		aware := sta.MonteCarlo(nl, lib, sta.Variation{SigmaL: 1.5, SystematicL: gl.Delay}, period, 200, 1)
		report("F4", func() {
			fmt.Printf("F4 nominal-mean MC: WNS %.1f+-%.1f ps (min %.1f), leak %.3g+-%.2g A\n",
				base.WNSMean, base.WNSSigma, base.WNSMin, base.LeakMean, base.LeakSigma)
			fmt.Printf("F4 litho-mean MC:   WNS %.1f+-%.1f ps (min %.1f), leak %.3g+-%.2g A\n",
				aware.WNSMean, aware.WNSSigma, aware.WNSMin, aware.LeakMean, aware.LeakSigma)
		})
	}
}

// BenchmarkT7Scorecard — T7: the full hit-or-hype scorecard.
func BenchmarkT7Scorecard(b *testing.B) {
	t := tech.N45()
	for i := 0; i < b.N; i++ {
		sc := dfm.RunAll(context.Background(), t, 11)
		report("T7", func() {
			fmt.Print(sc.Table())
		})
	}
}

// BenchmarkF5DPT — F5 (extension): double-patterning conflicts vs
// pitch on a diagonal-adjacency grid.
func BenchmarkF5DPT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var rows []string
		for _, pitch := range []int64{400, 300, 250, 200, 170} {
			var rs []geom.Rect
			rnd := rand.New(rand.NewSource(3))
			for x := int64(0); x < 10; x++ {
				for y := int64(0); y < 10; y++ {
					ox := rnd.Int63n(pitch / 4)
					rs = append(rs, geom.R(x*pitch+ox+y*pitch/2, y*pitch, x*pitch+ox+y*pitch/2+80, y*pitch+80))
				}
			}
			res := dpt.Decompose(rs, 160, true, 40)
			rows = append(rows, fmt.Sprintf("F5 pitch=%d edges=%d conflicts=%d stitches=%d imbalance=%.3f",
				pitch, res.Edges, len(res.Conflicts), res.Stitches, res.DensityBalance()))
		}
		report("F5", func() {
			for _, s := range rows {
				fmt.Println(s)
			}
		})
	}
}

// ---- Full-chip streaming benches (PR7): the tiled engine vs the
// flatten-everything baseline on the same small SoC floorplan. The
// three numbers to compare are ChipTiled (cold cache, intra-run
// reuse only), ChipTiledWarm (every tile replayed from cache), and
// ChipFlat (the baseline the tiled results are proven equal to). ----

// chipBench builds the shared 3x3-slot workload.
func chipBench(b *testing.B) (*layout.Cell, tiling.Opts) {
	b.Helper()
	l, _, err := layout.GenerateChip(tech.N45(), layout.ChipOpts{Seed: 7, Slots: 3, Defects: 4})
	if err != nil {
		b.Fatal(err)
	}
	return l.Top, tiling.Opts{
		Tile: 24000, Halo: 2000,
		DRC: true, Density: true, DensityWindow: 3000,
		MaxViolations: 100_000,
	}
}

// BenchmarkChipTiled — halo-tiled streaming evaluation, fresh cache
// each iteration: what a first full-chip run costs, including the
// intra-run reuse between identical tiles.
func BenchmarkChipTiled(b *testing.B) {
	top, o := chipBench(b)
	ex := tiling.NewExtractor(top)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Cache = tiling.NewCache(0)
		res, err := tiling.Evaluate(context.Background(), tech.N45(), ex, o)
		if err != nil {
			b.Fatal(err)
		}
		report("chip-tiled", func() {
			fmt.Printf("chip tiled: %d tiles, %d hits/%d misses, %d violations\n",
				res.Stats.Tiles, res.Stats.TileHits, res.Stats.TileMisses, len(res.Violations))
		})
	}
}

// BenchmarkChipTiledWarm — same evaluation against a pre-warmed cache:
// the incremental-rerun cost when nothing changed.
func BenchmarkChipTiledWarm(b *testing.B) {
	top, o := chipBench(b)
	ex := tiling.NewExtractor(top)
	o.Cache = tiling.NewCache(0)
	if _, err := tiling.Evaluate(context.Background(), tech.N45(), ex, o); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tiling.Evaluate(context.Background(), tech.N45(), ex, o)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.TileMisses != 0 {
			b.Fatalf("warm run missed %d tiles", res.Stats.TileMisses)
		}
	}
}

// BenchmarkChipFlat — the flatten-everything baseline on the same
// chip and deck set.
func BenchmarkChipFlat(b *testing.B) {
	top, o := chipBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tiling.EvaluateFlat(context.Background(), tech.N45(), top, o); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Surrogate fast path benches (PR9): the uncertainty-gated ML
// pre-filter on the full-chip hotspot scan vs the exact-only scan of
// the same chip. The acceptance bar is a >= 5x scan speedup with
// recall 1.0 on the generator's injected litho defects; the
// calibration gauges (holdout MAPE / Pearson / precision / recall)
// are what EXPERIMENTS.md R9 judges the hit-or-hype verdict on. ----

// surrogateChip builds the ~1M-rect workload: a via-farm-heavy mix
// keeps most metal1 windows clean (the population the gate can skip)
// while the logic macros and six injected defects supply the dirty
// tail that must fall through to exact simulation.
func surrogateChip(b *testing.B) (*layout.Cell, layout.ChipInfo, tiling.Opts) {
	b.Helper()
	l, info, err := layout.GenerateChip(tech.N45(), layout.ChipOpts{
		Seed: 11, TargetRects: 1_000_000, HotspotDefects: 6,
		MacroMix: []int{1, 1, 0, 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	o := tiling.Opts{
		Tile: 24000, Halo: 2000,
		Hotspots:        []tech.Layer{tech.Metal1},
		HotspotCond:     litho.Nominal,
		HotspotInterior: true,
	}
	return l.Top, info, o
}

// surrogateRecall fails the benchmark unless every injected defect
// site overlaps a reported hotspot on its layer: the gated scan is
// only a win if it provably loses nothing.
func surrogateRecall(b *testing.B, info layout.ChipInfo, res *tiling.Result) {
	b.Helper()
	for _, site := range info.HotspotSites {
		found := false
		for _, h := range res.Hotspots[site.Layer] {
			if h.Box.Overlaps(site.Box) {
				found = true
				break
			}
		}
		if !found {
			b.Fatalf("gated scan lost the injected %s defect at %v", site.Kind, site.Box)
		}
	}
}

// BenchmarkSurrogateChipScan — the headline experiment: the gated
// scan (timed per iteration) against the exact-only scan of the same
// chip (timed once, reported as a gauge). Gauge rows carry the
// speedup, skip rate, holdout calibration, and defect recall in the
// ns/op slot so benchjson records them alongside the timings.
func BenchmarkSurrogateChipScan(b *testing.B) {
	top, info, o := surrogateChip(b)
	ex := tiling.NewExtractor(top)
	ctx := context.Background()

	exactStart := time.Now()
	exact, err := tiling.Evaluate(ctx, tech.N45(), ex, o)
	if err != nil {
		b.Fatal(err)
	}
	exactNS := time.Since(exactStart).Nanoseconds()
	surrogateRecall(b, info, exact)

	o.Surrogate = &surrogate.Config{Seed: 11}
	b.ReportAllocs()
	b.ResetTimer()
	var res *tiling.Result
	for i := 0; i < b.N; i++ {
		res, err = tiling.Evaluate(ctx, tech.N45(), ex, o)
		if err != nil {
			b.Fatal(err)
		}
		surrogateRecall(b, info, res)
	}
	b.StopTimer()
	gatedNS := int64(b.Elapsed()) / int64(b.N)
	rep := res.Surrogate[tech.Metal1]
	if rep == nil || rep.Skipped == 0 {
		b.Fatalf("gate skipped nothing; report: %+v", rep)
	}
	report("surrogate-chip", func() {
		fmt.Printf("surrogate chip: %d rects, %d windows (%d non-empty), sampled %d, skipped %d, guarded %d, exact %d\n",
			info.Rects, rep.Windows, rep.NonEmpty, rep.Sampled, rep.Skipped, rep.Guarded, rep.Exact)
		fmt.Printf("surrogate calib: TClean %.3f, holdout %d (%d dirty), MAPE %.3f, r %.3f, P %.2f, R %.2f\n",
			rep.TClean, rep.Holdout, rep.HoldoutDirty, rep.MAPE, rep.Pearson, rep.Precision, rep.Recall)
		fmt.Printf("surrogate time: exact-only %.1fs, gated %.1fs, speedup %.2fx\n",
			float64(exactNS)/1e9, float64(gatedNS)/1e9, float64(exactNS)/float64(gatedNS))
		fmt.Printf("BenchmarkSurrogateExactOnly \t%8d\t%12.0f ns/op\n", 1, float64(exactNS))
		fmt.Printf("BenchmarkSurrogateSpeedupCenti \t%8d\t%12.0f ns/op\n", 1, 100*float64(exactNS)/float64(gatedNS))
		fmt.Printf("BenchmarkSurrogateSkipRatePermil \t%8d\t%12.0f ns/op\n", rep.NonEmpty, 1000*rep.SkipRate)
		fmt.Printf("BenchmarkSurrogateMAPEMilli \t%8d\t%12.0f ns/op\n", rep.Holdout, 1000*rep.MAPE)
		fmt.Printf("BenchmarkSurrogatePearsonMilli \t%8d\t%12.0f ns/op\n", rep.Holdout, 1000*rep.Pearson)
		fmt.Printf("BenchmarkSurrogatePrecisionPermil \t%8d\t%12.0f ns/op\n", rep.Holdout, 1000*rep.Precision)
		fmt.Printf("BenchmarkSurrogateRecallPermil \t%8d\t%12.0f ns/op\n", rep.Holdout, 1000*rep.Recall)
		fmt.Printf("BenchmarkSurrogateDefectRecallPermil \t%8d\t%12.0f ns/op\n", len(info.HotspotSites), 1000.0)
	})
}

// BenchmarkSurrogateTrain — the training microbenchmark: featurize +
// boost on a synthetic window population, the in-loop cost the gate
// adds to every chip evaluation.
func BenchmarkSurrogateTrain(b *testing.B) {
	rnd := rand.New(rand.NewSource(4))
	win := geom.R(0, 0, 12000, 12000)
	n := 512
	X := make([]surrogate.Features, n)
	y := make([]float64, n)
	for i := range X {
		var rs []geom.Rect
		for j := 0; j < 40; j++ {
			x0, y0 := rnd.Int63n(11000), rnd.Int63n(11000)
			w := int64(90 + rnd.Intn(400))
			if i%9 == 0 && j == 0 {
				w = 30
			}
			rs = append(rs, geom.R(x0, y0, x0+w, y0+rnd.Int63n(800)+100))
		}
		X[i] = surrogate.WindowFeatures(win, 1000, rs, nil, 42, 42)
		if i%9 == 0 {
			y[i] = 1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := surrogate.Train(X, y, 64, 0.3)
		if len(m.Stumps) == 0 {
			b.Fatal("training learned nothing")
		}
	}
}

// BenchmarkGeomBoolean times the geometry kernel on block-scale data
// (supporting microbenchmark, not a paper experiment).
func BenchmarkGeomBoolean(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	var rs []geom.Rect
	for i := 0; i < 2000; i++ {
		x, y := rnd.Int63n(100000), rnd.Int63n(100000)
		rs = append(rs, geom.R(x, y, x+rnd.Int63n(500)+50, y+rnd.Int63n(500)+50))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = geom.Normalize(rs)
	}
}

// BenchmarkDRCBlock times the full standard deck on a generated block.
func BenchmarkDRCBlock(b *testing.B) {
	t := tech.N45()
	l, err := layout.GenerateBlock(t, layout.BlockOpts{Rows: 4, RowWidth: 12000, Nets: 25, MaxFan: 4, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	flat := l.Flatten()
	deck := drc.StandardDeck(t)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := drc.NewContext(t, flat)
		res := deck.Run(ctx)
		if res.Count() > len(flat) {
			b.Fatal("implausible violation count")
		}
	}
}

// BenchmarkLithoSimulate times one aerial-image tile.
func BenchmarkLithoSimulate(b *testing.B) {
	t := tech.N45()
	cell := layout.LineSpace(t, tech.Metal1, 70, 70, 3000, 12)
	rs := cell.LayerRects(tech.Metal1)
	window := geom.R(0, 0, 2000, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img := litho.Simulate(rs, window, t.Optics, litho.Nominal)
		if img.Max() <= 0 {
			b.Fatal("empty image")
		}
	}
}

// BenchmarkLithoSimulateObs is BenchmarkLithoSimulate with the
// metrics registry recording. Comparing the pair bounds the cost of
// the instrumentation when a sink is attached; the disabled cost is
// the delta between BenchmarkLithoSimulate before and after the obs
// layer landed (<2% — the disabled path is one atomic load + branch
// per instrument site).
func BenchmarkLithoSimulateObs(b *testing.B) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	t := tech.N45()
	cell := layout.LineSpace(t, tech.Metal1, 70, 70, 3000, 12)
	rs := cell.LayerRects(tech.Metal1)
	window := geom.R(0, 0, 2000, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img := litho.Simulate(rs, window, t.Optics, litho.Nominal)
		if img.Max() <= 0 {
			b.Fatal("empty image")
		}
	}
}

// BenchmarkFillSynthesize times fill synthesis on a die-scale extent.
func BenchmarkFillSynthesize(b *testing.B) {
	rs := []geom.Rect{geom.R(0, 0, 10000, 30000)}
	extent := geom.R(0, 0, 40000, 30000)
	o := fill.DefaultOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tiles := fill.Synthesize(rs, extent, o)
		if len(tiles) == 0 {
			b.Fatal("no tiles")
		}
	}
}

// ---- Ablation benches: the design choices DESIGN.md calls out. ----

// BenchmarkAblationOPCIterations sweeps the model-OPC iteration count:
// the convergence-vs-runtime tradeoff.
func BenchmarkAblationOPCIterations(b *testing.B) {
	t := tech.N45()
	drawn := geom.Normalize([]geom.Rect{
		geom.R(0, 0, 70, 1200), geom.R(140, 0, 210, 1200), geom.R(500, 0, 570, 1200),
	})
	window := geom.BBoxOf(drawn).Bloat(400)
	for i := 0; i < b.N; i++ {
		var rows []string
		for _, iters := range []int{1, 2, 3, 5, 8} {
			mo := opc.DefaultModelOpts()
			mo.Iterations = iters
			res := opc.ModelBased(drawn, window, t.Optics, mo)
			rows = append(rows, fmt.Sprintf("ablation opc-iters=%d rms=%.2f", iters, res.RMSHistory[len(res.RMSHistory)-1]))
		}
		report("ablation-opc-iters", func() {
			for _, s := range rows {
				fmt.Println(s)
			}
		})
	}
}

// BenchmarkAblationFragmentLength sweeps OPC fragment length: finer
// fragments correct better but cost mask complexity.
func BenchmarkAblationFragmentLength(b *testing.B) {
	t := tech.N45()
	drawn := geom.Normalize([]geom.Rect{geom.R(0, 0, 70, 1500)})
	window := geom.BBoxOf(drawn).Bloat(400)
	for i := 0; i < b.N; i++ {
		var rows []string
		for _, ml := range []int64{60, 120, 240, 480} {
			mo := opc.DefaultModelOpts()
			mo.MaxLen = ml
			res := opc.ModelBased(drawn, window, t.Optics, mo)
			rows = append(rows, fmt.Sprintf("ablation frag-len=%d rms=%.2f frags=%d",
				ml, res.RMSHistory[len(res.RMSHistory)-1], len(res.Fragments)))
		}
		report("ablation-frag", func() {
			for _, s := range rows {
				fmt.Println(s)
			}
		})
	}
}

// BenchmarkAblationILTvsModel compares inverse and model-based OPC on
// the same target: print fidelity and mask complexity.
func BenchmarkAblationILTvsModel(b *testing.B) {
	t := tech.N45()
	drawn := geom.Normalize([]geom.Rect{geom.R(0, 0, 70, 1200)})
	window := geom.BBoxOf(drawn).Bloat(350)
	rms := func(mask []geom.Rect) float64 {
		img := litho.Simulate(mask, window, t.Optics, litho.Nominal)
		return litho.SummarizeEPE(img.MeasureEPE(drawn, 120)).RMS
	}
	for i := 0; i < b.N; i++ {
		model := opc.ModelBased(drawn, window, t.Optics, opc.DefaultModelOpts())
		inv := opc.ILT(drawn, window, t.Optics, opc.DefaultILTOpts())
		report("ablation-ilt", func() {
			fmt.Printf("ablation model-opc rms=%.2f shapes=%d\n", rms(model.Mask), len(model.Mask))
			fmt.Printf("ablation inverse-opc rms=%.2f shapes=%d\n", rms(inv.Mask), len(inv.Mask))
		})
	}
}

// BenchmarkAblationPatternRadius sweeps the DRC Plus context radius:
// separation quality of hotspot vs clean patterns.
func BenchmarkAblationPatternRadius(b *testing.B) {
	// Facing line-end pairs (hot) vs isolated tips (clean).
	var rs []geom.Rect
	var hot, clean []geom.Point
	for i := int64(0); i < 4; i++ {
		x := i * 3000
		rs = append(rs, geom.R(x, 0, x+70, 1000), geom.R(x, 1260, x+70, 2260))
		hot = append(hot, geom.Pt(x, 1000))
	}
	for i := int64(0); i < 4; i++ {
		x := i*3000 + 15000
		rs = append(rs, geom.R(x, 0, x+70, 1000))
		clean = append(clean, geom.Pt(x, 1000))
	}
	radii := []int64{100, 150, 200, 300, 400}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evals, best := pattern.OptimizeRadius(rs, hot, clean, radii)
		report("ablation-radius", func() {
			for _, ev := range evals {
				fmt.Printf("ablation pattern-radius=%d falseRate=%.2f hotClasses=%d\n",
					ev.Radius, ev.FalseRate, ev.HotClasses)
			}
			fmt.Printf("ablation pattern-radius chosen=%d\n", best)
		})
	}
}

// BenchmarkAblationFillWindow sweeps the fill analysis window: finer
// windows equalize harder at more fill cost.
func BenchmarkAblationFillWindow(b *testing.B) {
	t := tech.N45()
	l, err := layout.GenerateBlock(t, layout.BlockOpts{Rows: 3, RowWidth: 10000, Nets: 15, MaxFan: 3, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	m1 := layout.ByLayer(l.Flatten())[tech.Metal1]
	extent := geom.BBoxOf(m1).Bloat(6000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rows []string
		for _, win := range []int64{2000, 3000, 5000, 8000} {
			o := fill.DefaultOpts()
			o.Window, o.Step = win, win/2
			tiles := fill.Synthesize(m1, extent, o)
			after := fill.Analyze(append(append([]geom.Rect{}, m1...), tiles...), extent, o.Window, o.Step).Summarize()
			rows = append(rows, fmt.Sprintf("ablation fill-window=%d tiles=%d sigma=%.4f min=%.3f",
				win, len(tiles), after.Sigma, after.Min))
		}
		report("ablation-fill", func() {
			for _, s := range rows {
				fmt.Println(s)
			}
		})
	}
}

// BenchmarkMetrologyPlan times design-driven metrology plan generation
// and execution on a block layer.
func BenchmarkMetrologyPlan(b *testing.B) {
	t := tech.N45()
	l, err := layout.GenerateBlock(t, layout.BlockOpts{Rows: 2, RowWidth: 6000, Nets: 8, MaxFan: 3, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	m1 := layout.ByLayer(l.Flatten())[tech.Metal1]
	window := geom.BBoxOf(m1).Bloat(300)
	img := litho.Simulate(m1, window, t.Optics, litho.Nominal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := metrology.GeneratePlan(m1, tech.Metal1, metrology.DefaultPlanOpts())
		ms := metrology.Execute(plan, img, metrology.DefaultTool(), 1)
		st := metrology.Summarize(ms)
		report("metrology", func() {
			fmt.Println(plan)
			for _, k := range []metrology.SiteKind{metrology.LineWidth, metrology.SpaceWidth, metrology.LineEnd} {
				s := st[k]
				fmt.Printf("metrology %-8s n=%d valid=%d meanErr=%.2fnm sigma=%.2fnm\n",
					k, s.N, s.Valid, s.MeanErr, s.Sigma)
			}
		})
	}
}

// BenchmarkF6Scaling — F6 (extension): computational technology
// scaling. Shrink a standard-cell poly layer by progressive factors
// and watch printability metrics find the breaking point — the
// layout-printability-verification approach to deciding which rules
// can be pushed in the next node.
func BenchmarkF6Scaling(b *testing.B) {
	t := tech.N45()
	cell := layout.Nand2(t)
	poly := geom.Normalize(cell.LayerRects(tech.Poly))
	for i := 0; i < b.N; i++ {
		var rows []string
		for _, s := range []struct{ num, den int64 }{{10, 10}, {9, 10}, {8, 10}, {7, 10}, {6, 10}} {
			scaled := geom.Scale(poly, s.num, s.den)
			window := geom.BBoxOf(scaled).Bloat(300)
			// The full flow: OPC the scaled layout, then verify the
			// print against the scaled target.
			res := opc.ModelBased(scaled, window, t.Optics, opc.DefaultModelOpts())
			img := litho.Simulate(res.Mask, window, t.Optics, litho.Nominal)
			printed := img.PrintedRects()
			drawnArea := geom.AreaOf(scaled)
			coverage := 0.0
			if drawnArea > 0 {
				coverage = float64(geom.AreaOf(geom.Intersect(printed, scaled))) / float64(drawnArea)
			}
			rms := litho.SummarizeEPE(img.MeasureEPE(scaled, 100)).RMS
			rows = append(rows, fmt.Sprintf("F6 scale=%.1f printedCoverage=%.3f rmsEPE=%.1f",
				float64(s.num)/float64(s.den), coverage, rms))
		}
		report("F6", func() {
			for _, r := range rows {
				fmt.Println(r)
			}
		})
	}
}

// BenchmarkAblationPWOPC compares nominal-only and process-window OPC
// at the defocus corner.
func BenchmarkAblationPWOPC(b *testing.B) {
	t := tech.N45()
	drawn := geom.Normalize([]geom.Rect{geom.R(0, 0, 90, 1500)})
	window := geom.BBoxOf(drawn).Bloat(400)
	corner := litho.Condition{Defocus: 80, Dose: 1}
	rmsAt := func(mask []geom.Rect, cond litho.Condition) float64 {
		img := litho.Simulate(mask, window, t.Optics, cond)
		return litho.SummarizeEPE(img.MeasureEPE(drawn, 120)).RMS
	}
	for i := 0; i < b.N; i++ {
		mo := opc.DefaultModelOpts()
		nom := opc.ModelBased(drawn, window, t.Optics, mo)
		pw := opc.ProcessWindowOPC(drawn, window, t.Optics, mo, opc.StandardPWCorners(80))
		report("ablation-pwopc", func() {
			fmt.Printf("ablation nominal-opc: rms@nominal=%.2f rms@f80=%.2f\n",
				rmsAt(nom.Mask, litho.Nominal), rmsAt(nom.Mask, corner))
			fmt.Printf("ablation pw-opc:      rms@nominal=%.2f rms@f80=%.2f\n",
				rmsAt(pw.Mask, litho.Nominal), rmsAt(pw.Mask, corner))
		})
	}
}

// ---- In-design score-and-repair benches (PR10): the repair loop on
// a ~1M-rect chip, and its incremental dirty-region re-evaluation
// against a from-scratch run of the repaired chip. The acceptance bar
// is a repaired weighted score strictly below the original and an
// incremental re-evaluation >= 5x cheaper than full, bit-identical
// results. ----

// repairChip builds the ~1M-rect repair workload: injected spacing
// defects (spread candidates) plus repairable via sites
// (under-enclosed pads and single cuts) on top of the standard macro
// mix.
func repairChip(b *testing.B) (*layout.Cell, layout.ChipInfo, tiling.Opts) {
	b.Helper()
	l, info, err := layout.GenerateChip(tech.N45(), layout.ChipOpts{
		Seed: 11, TargetRects: 1_000_000, Defects: 8, RepairDefects: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	return l.Top, info, tiling.Opts{Tile: 24000, Halo: 2000, DRC: true}
}

// BenchmarkRepairLoop — the full in-design loop (score, propose,
// legality-check, apply, incremental rescore) timed per iteration;
// the incremental-vs-full differential reported as gauges.
func BenchmarkRepairLoop(b *testing.B) {
	top, info, o := repairChip(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var (
		out *repair.Outcome
		err error
	)
	for i := 0; i < b.N; i++ {
		out, err = repair.Run(ctx, tech.N45(), top, repair.Opts{Eval: o, Rounds: 2, MaxFixes: 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if out.After.Total >= out.Before.Total {
		b.Fatalf("repair did not improve the weighted score: %.1f -> %.1f", out.Before.Total, out.After.Total)
	}
	if len(out.Applied) == 0 {
		b.Fatal("repair applied no fixes")
	}

	// Replay the loop's merged edits as one dirty region against a
	// fresh snapshot of the original chip and race the incremental
	// re-evaluation against a from-scratch run of the repaired chip.
	var dirty repair.Delta
	for _, f := range out.Applied {
		dirty.Merge(f.Delta)
	}
	_, snap, err := tiling.EvaluateSnap(ctx, tech.N45(), tiling.NewExtractor(top), o)
	if err != nil {
		b.Fatal(err)
	}
	t0 := time.Now()
	incRes, _, err := tiling.EvaluateDelta(ctx, tech.N45(), tiling.NewExtractor(out.Top), snap, dirty.Rects())
	if err != nil {
		b.Fatal(err)
	}
	incNS := time.Since(t0).Nanoseconds()
	t1 := time.Now()
	fullRes, err := tiling.EvaluateChip(ctx, tech.N45(), out.Top, o)
	if err != nil {
		b.Fatal(err)
	}
	fullNS := time.Since(t1).Nanoseconds()
	if !tiling.Equivalent(incRes, fullRes) {
		b.Fatal("incremental re-evaluation diverges from the from-scratch run")
	}
	speedup := float64(fullNS) / float64(incNS)
	if speedup < 5 {
		b.Fatalf("incremental re-evaluation only %.2fx cheaper than full, want >= 5x", speedup)
	}

	report("repair-loop", func() {
		fmt.Printf("repair chip: %d rects, %d spacing defects, %d repair sites\n",
			info.Rects, len(info.DefectBoxes), len(info.RepairSites))
		fmt.Printf("repair loop: score %.1f -> %.1f, %v applied, %d rejected, %d delta / %d full re-evals\n",
			out.Before.Total, out.After.Total, out.AppliedByKind(), len(out.Rejected), out.DeltaEvals, out.FullEvals)
		fmt.Printf("repair delta: incremental %.2fs vs full %.2fs, speedup %.2fx\n",
			float64(incNS)/1e9, float64(fullNS)/1e9, speedup)
		fmt.Printf("BenchmarkRepairScoreBeforeMilli \t%8d\t%12.0f ns/op\n", 1, 1000*out.Before.Total)
		fmt.Printf("BenchmarkRepairScoreAfterMilli \t%8d\t%12.0f ns/op\n", 1, 1000*out.After.Total)
		fmt.Printf("BenchmarkRepairFixesApplied \t%8d\t%12.0f ns/op\n", 1, float64(len(out.Applied)))
		fmt.Printf("BenchmarkRepairFixesRejected \t%8d\t%12.0f ns/op\n", 1, float64(len(out.Rejected)))
		fmt.Printf("BenchmarkRepairIncrementalReeval \t%8d\t%12.0f ns/op\n", 1, float64(incNS))
		fmt.Printf("BenchmarkRepairFullReeval \t%8d\t%12.0f ns/op\n", 1, float64(fullNS))
		fmt.Printf("BenchmarkRepairIncrSpeedupCenti \t%8d\t%12.0f ns/op\n", 1, 100*speedup)
	})
}
