// Package repro is godfm: an open-source reproduction of the question
// posed by "DFM in practice: hit or hype?" (DAC 2008) — a complete
// Design-for-Manufacturability stack in pure Go, plus the scorecard
// experiments that answer the panel quantitatively.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); the runnable surfaces are:
//
//   - cmd/dfmscore   — the full hit-or-hype scorecard
//   - cmd/drccheck   — design-rule checking
//   - cmd/lithosim   — aerial-image simulation and hotspot scanning
//   - cmd/yieldest   — critical-area yield estimation
//   - cmd/patscan    — layout pattern catalogs
//   - examples/      — quickstart and four domain flows
//   - bench_test.go  — one benchmark per experiment (T1..T7, F1..F6)
package repro
