// Command drccheck runs the standard DRC deck (and optionally the
// density deck) over a layout file in the godfm text format, or over a
// freshly generated block.
//
// Usage:
//
//	drccheck [-density] [-max N] layout.txt
//	drccheck -gen -seed 7 -rows 4 -width 12000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/drc"
	"repro/internal/layout"
	"repro/internal/tech"
)

func main() {
	gen := flag.Bool("gen", false, "generate a block instead of reading a file")
	seed := flag.Int64("seed", 1, "generation seed")
	rows := flag.Int("rows", 4, "generated rows")
	width := flag.Int64("width", 12000, "generated row width, nm")
	nets := flag.Int("nets", 20, "generated signal nets")
	density := flag.Bool("density", false, "also run density windows")
	maxPrint := flag.Int("max", 20, "violations to print")
	flag.Parse()

	var l *layout.Layout
	var err error
	switch {
	case *gen:
		l, err = layout.GenerateBlock(tech.N45(), layout.BlockOpts{
			Rows: *rows, RowWidth: *width, Nets: *nets, MaxFan: 4, Seed: *seed,
		})
	case flag.NArg() == 1:
		var f *os.File
		f, err = os.Open(flag.Arg(0))
		if err == nil {
			defer f.Close()
			l, err = layout.Read(f)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: drccheck [-density] layout.txt | drccheck -gen [-seed N]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "drccheck:", err)
		os.Exit(1)
	}
	t := l.Tech
	if t == nil {
		t = tech.N45()
	}

	flat := l.Flatten()
	ctx := drc.NewContext(t, flat)
	res := drc.StandardDeck(t).Run(ctx)
	fmt.Printf("%s: %d shapes, %d violations\n", l.Top.Name, len(flat), res.Count())
	for rule, n := range res.ByRule {
		if n > 0 {
			fmt.Printf("  %-28s %d\n", rule, n)
		}
	}
	for i, v := range res.Violations {
		if i >= *maxPrint {
			fmt.Printf("  ... %d more\n", res.Count()-*maxPrint)
			break
		}
		fmt.Println(" ", v)
	}

	if *density {
		dres := drc.DensityDeck(t, 5000).Run(ctx)
		fmt.Printf("density windows: %d violations\n", dres.Count())
		for i, v := range dres.Violations {
			if i >= *maxPrint {
				break
			}
			fmt.Println(" ", v)
		}
	}
	if res.Count() > 0 {
		os.Exit(1)
	}
}
