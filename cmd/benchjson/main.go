// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a JSON benchmark record, for the regression harness
// behind `make bench`. The raw input passes through to stdout
// unchanged so the tool can sit at the end of a pipe without hiding
// the live benchmark progress.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem . | benchjson -o BENCH_PR2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line. B/op and allocs/op are -1 when the
// run did not include -benchmem.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type Report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkLithoSimulate-8   20   75973335 ns/op   1926063 B/op   10 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout only)")
	flag.Parse()

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: trimProcSuffix(m[1]), BytesPerOp: -1, AllocsPerOp: -1}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// trimProcSuffix drops the -N GOMAXPROCS suffix so records compare
// across machines.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
