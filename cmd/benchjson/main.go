// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a JSON benchmark record, for the regression harness
// behind `make bench`. The raw input passes through to stdout
// unchanged so the tool can sit at the end of a pipe without hiding
// the live benchmark progress; the JSON report goes to the -o file,
// or follows the passthrough on stdout when -o is not given.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem . | benchjson -o BENCH_PR2.json
//
// With -compare OLD.json the tool instead reads two JSON records and
// prints a per-benchmark delta table (ns/op and allocs/op ratios)
// followed by a geomean speedup summary line, for `make benchcmp`:
//
//	benchjson -compare BENCH_PR3.json BENCH_PR4.json
//
// With -check FILE the tool validates that FILE is a parseable record
// with at least one benchmark — the CI guard that a `make bench`
// pipeline actually captured something:
//
//	benchjson -check BENCH_PR7.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line. B/op and allocs/op are -1 when the
// run did not include -benchmem.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type Report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkLithoSimulate-8   20   75973335 ns/op   1926063 B/op   10 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default: append to stdout)")
	compare := flag.String("compare", "", "old JSON record: compare against the new record named as the positional argument")
	check := flag.String("check", "", "validate that this JSON record parses and holds at least one benchmark")
	flag.Parse()

	if *check != "" {
		if err := runCheck(os.Stdout, *check); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare OLD.json needs exactly one NEW.json argument")
			os.Exit(2)
		}
		if err := runCompare(os.Stdout, *compare, flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout, os.Stderr, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// loadReport reads and parses one JSON benchmark record.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runCheck validates a record: it must parse and contain at least one
// benchmark with a positive ns/op. Individual entries may be exactly
// zero — gauge-style lines (FailedReqs, Mismatches) report a count in
// the ns/op slot and are healthiest at 0 — but a record that is all
// zeros, negative, or empty fails. CI runs this after every recording
// pipeline so a silently-empty record fails the build instead of
// poisoning the next comparison.
func runCheck(w io.Writer, path string) error {
	rep, err := loadReport(path)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("%s: record holds no benchmarks", path)
	}
	anyPositive := false
	for _, b := range rep.Benchmarks {
		if b.Name == "" || b.NsPerOp < 0 {
			return fmt.Errorf("%s: malformed benchmark entry %+v", path, b)
		}
		if b.NsPerOp > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		return fmt.Errorf("%s: every benchmark reads 0 ns/op; record looks empty", path)
	}
	fmt.Fprintf(w, "benchjson: %s ok (%d benchmarks)\n", path, len(rep.Benchmarks))
	return nil
}

// runCompare loads two JSON records and prints per-benchmark ns/op
// and allocs/op deltas for every benchmark present in both, in the
// new record's order, then a geomean speedup summary. Speedups print
// as the old/new ratio (so bigger is better); benchmarks only present
// on one side are listed at the end so renames don't vanish silently.
func runCompare(w io.Writer, oldPath, newPath string) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Result, len(oldRep.Benchmarks))
	for _, r := range oldRep.Benchmarks {
		oldBy[r.Name] = r
	}
	newNames := make(map[string]bool, len(newRep.Benchmarks))

	var logSum float64
	var logN int
	fmt.Fprintf(w, "%-40s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs", "ratio")
	for _, n := range newRep.Benchmarks {
		newNames[n.Name] = true
		o, ok := oldBy[n.Name]
		if !ok {
			continue
		}
		speed := "n/a"
		if n.NsPerOp > 0 {
			speed = fmt.Sprintf("%.2fx", o.NsPerOp/n.NsPerOp)
			if o.NsPerOp > 0 {
				logSum += math.Log(o.NsPerOp / n.NsPerOp)
				logN++
			}
		}
		ar := "n/a"
		if o.AllocsPerOp >= 0 && n.AllocsPerOp > 0 {
			ar = fmt.Sprintf("%.2fx", float64(o.AllocsPerOp)/float64(n.AllocsPerOp))
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %8s %12d %12d %8s\n",
			n.Name, o.NsPerOp, n.NsPerOp, speed, o.AllocsPerOp, n.AllocsPerOp, ar)
	}
	for _, n := range newRep.Benchmarks {
		if _, ok := oldBy[n.Name]; !ok {
			fmt.Fprintf(w, "%-40s %14s %14.0f  (new)\n", n.Name, "-", n.NsPerOp)
		}
	}
	for _, o := range oldRep.Benchmarks {
		if !newNames[o.Name] {
			fmt.Fprintf(w, "%-40s %14.0f %14s  (removed)\n", o.Name, o.NsPerOp, "-")
		}
	}
	// The headline: geometric mean of the old/new ns/op ratios over the
	// common set. >1.00x means the new record is faster overall.
	if logN > 0 {
		fmt.Fprintf(w, "geomean speedup: %.2fx over %d common benchmarks\n",
			math.Exp(logSum/float64(logN)), logN)
	} else {
		fmt.Fprintln(w, "geomean speedup: n/a (no common benchmarks)")
	}
	return nil
}

// run parses benchmark output from in, echoing every line to stdout,
// then emits the JSON report: to the outPath file when set, otherwise
// to stdout after the passthrough (so the record survives even when
// nobody remembered -o).
func run(in io.Reader, stdout, stderr io.Writer, outPath string) error {
	var rep Report
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(stdout, line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: trimProcSuffix(m[1]), BytesPerOp: -1, AllocsPerOp: -1}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read: %w", err)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath == "" {
		_, err := stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), outPath)
	return nil
}

// trimProcSuffix drops the -N GOMAXPROCS suffix so records compare
// across machines.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
