package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkLithoSimulate-8   	      20	  75973335 ns/op	 1926063 B/op	      10 allocs/op
BenchmarkOPCModel-8        	       5	 212000000 ns/op
PASS
ok  	repro	4.2s
`

// The regression that motivated this test: with no -o the marshaled
// report was silently discarded, so `make bench` pipes that forgot
// the flag recorded nothing. The report must now follow the
// passthrough on stdout.
func TestRunNoOutputFileEmitsJSON(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run(strings.NewReader(sampleBench), &stdout, &stderr, ""); err != nil {
		t.Fatal(err)
	}
	got := stdout.String()
	if !strings.HasPrefix(got, sampleBench) {
		t.Fatalf("passthrough mangled; got:\n%s", got)
	}
	var rep Report
	if err := json.Unmarshal([]byte(got[len(sampleBench):]), &rep); err != nil {
		t.Fatalf("stdout after passthrough is not the JSON report: %v", err)
	}
	checkReport(t, rep)
}

func TestRunWritesOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr strings.Builder
	if err := run(strings.NewReader(sampleBench), &stdout, &stderr, path); err != nil {
		t.Fatal(err)
	}
	if got := stdout.String(); got != sampleBench {
		t.Fatalf("with -o, stdout must be the bare passthrough; got:\n%s", got)
	}
	if !strings.Contains(stderr.String(), "wrote 2 benchmarks") {
		t.Fatalf("missing confirmation on stderr: %q", stderr.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep)
}

func checkReport(t *testing.T, rep Report) {
	t.Helper()
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Package != "repro" {
		t.Fatalf("header not parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkLithoSimulate" || b0.Iterations != 20 ||
		b0.NsPerOp != 75973335 || b0.BytesPerOp != 1926063 || b0.AllocsPerOp != 10 {
		t.Fatalf("bad first result: %+v", b0)
	}
	b1 := rep.Benchmarks[1]
	if b1.Name != "BenchmarkOPCModel" || b1.BytesPerOp != -1 || b1.AllocsPerOp != -1 {
		t.Fatalf("bad second result (benchmem fields must default to -1): %+v", b1)
	}
}

// Compare mode: per-benchmark ns/op and allocs/op deltas for every
// benchmark present in both records, with one-sided entries flagged
// instead of dropped.
func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	writeRec := func(name string, rep Report) string {
		path := filepath.Join(dir, name)
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := writeRec("old.json", Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 3000, AllocsPerOp: 500},
		{Name: "BenchmarkGone", NsPerOp: 10, AllocsPerOp: 1},
	}})
	newPath := writeRec("new.json", Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkNew", NsPerOp: 42, AllocsPerOp: 7},
	}})

	var out strings.Builder
	if err := runCompare(&out, oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"BenchmarkA", "3.00x", "5.00x", "(new)", "(removed)", "BenchmarkGone", "BenchmarkNew"} {
		if !strings.Contains(got, want) {
			t.Fatalf("compare output missing %q:\n%s", want, got)
		}
	}
	// One common benchmark at 3x: the geomean IS that ratio.
	if !strings.Contains(got, "geomean speedup: 3.00x over 1 common benchmarks") {
		t.Fatalf("missing geomean summary line:\n%s", got)
	}
}

// Geomean over several common benchmarks: 4x and 1x multiply to a
// geometric mean of 2x, regardless of record order.
func TestRunCompareGeomean(t *testing.T) {
	dir := t.TempDir()
	writeRec := func(name string, rep Report) string {
		path := filepath.Join(dir, name)
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := writeRec("old.json", Report{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 4000},
		{Name: "BenchmarkB", NsPerOp: 1000},
	}})
	newPath := writeRec("new.json", Report{Benchmarks: []Result{
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkA", NsPerOp: 1000},
	}})
	var out strings.Builder
	if err := runCompare(&out, oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "geomean speedup: 2.00x over 2 common benchmarks") {
		t.Fatalf("wrong geomean:\n%s", out.String())
	}

	// Disjoint records: no common set, summary degrades to n/a.
	lonePath := writeRec("lone.json", Report{Benchmarks: []Result{
		{Name: "BenchmarkC", NsPerOp: 5},
	}})
	out.Reset()
	if err := runCompare(&out, oldPath, lonePath); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "geomean speedup: n/a") {
		t.Fatalf("disjoint records must report n/a:\n%s", out.String())
	}
}

// -check accepts a well-formed record and rejects empty, malformed,
// and missing ones.
func TestRunCheck(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := write("good.json", `{"benchmarks":[{"name":"BenchmarkA","iterations":5,"ns_per_op":100}]}`)
	var out strings.Builder
	if err := runCheck(&out, good); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ok (1 benchmarks)") {
		t.Fatalf("missing ok summary: %q", out.String())
	}
	// A zero entry is a legitimate gauge (Mismatches, FailedReqs) as
	// long as the record isn't all zeros.
	gauge := write("gauge.json", `{"benchmarks":[{"name":"BenchmarkA","iterations":5,"ns_per_op":100},{"name":"BenchmarkAMismatches","iterations":2,"ns_per_op":0}]}`)
	if err := runCheck(&out, gauge); err != nil {
		t.Fatalf("zero-valued gauge next to a real benchmark rejected: %v", err)
	}

	for name, content := range map[string]string{
		"empty.json":    `{"benchmarks":[]}`,
		"noname.json":   `{"benchmarks":[{"ns_per_op":100}]}`,
		"zerons.json":   `{"benchmarks":[{"name":"BenchmarkA"}]}`,
		"negative.json": `{"benchmarks":[{"name":"BenchmarkA","iterations":5,"ns_per_op":-1}]}`,
		"syntax.json":   `{not json`,
	} {
		if err := runCheck(&out, write(name, content)); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
	if err := runCheck(&out, filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
}
