// Command dfmd serves the DFM technique evaluators as a long-lived
// HTTP JSON service: a bounded admission queue with live-signal load
// shedding (429 + Retry-After) feeding a persistent harness worker
// pool, singleflight collapsing of identical in-flight requests, and
// a content-addressed LRU cache so duplicate layouts from concurrent
// clients cost one evaluation.
//
// Usage:
//
//	dfmd [-addr HOST:PORT] [-workers N] [-queue N] [-cache N]
//	     [-max-wait D] [-timeout D] [-retries N] [-drain D] [-quiet]
//
// API (all JSON):
//
//	POST /v1/jobs            submit a job; ?wait=1 blocks for the result
//	GET  /v1/jobs/{id}       poll status
//	GET  /v1/jobs/{id}/result  settled outcome (202 while pending)
//	GET  /v1/techniques      technique registry
//	GET  /healthz            200 serving / 503 draining
//	GET  /metrics            server stats + obs registry snapshot
//
// SIGINT/SIGTERM begins a graceful drain: new submissions get 503,
// queued jobs settle with a clean rejection, in-flight evaluations
// finish (up to -drain, then they are force-canceled).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9517", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "evaluation worker pool width")
	queue := flag.Int("queue", 64, "admission queue capacity")
	cache := flag.Int("cache", 1024, "result cache entries")
	maxWait := flag.Duration("max-wait", 30*time.Second, "admission wait budget before shedding (0 = shed only on a full queue)")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-job evaluation budget")
	retries := flag.Int("retries", 1, "extra attempts for retryable workload failures")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget on shutdown before in-flight jobs are canceled")
	quiet := flag.Bool("quiet", false, "suppress the startup/shutdown log lines")
	flag.Parse()

	// The /metrics endpoint serves the obs registry; a metrics
	// service with a disabled registry would lie, so serving turns
	// recording on.
	obs.SetEnabled(true)

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		Queue:          *queue,
		CacheSize:      *cache,
		MaxWait:        *maxWait,
		DefaultTimeout: *timeout,
		Retries:        *retries,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfmd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logf("dfmd: serving on http://%s (workers=%d queue=%d cache=%d)",
		ln.Addr(), *workers, *queue, *cache)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "dfmd:", err)
		os.Exit(1)
	case s := <-sig:
		logf("dfmd: %v — draining (budget %v)", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Order: stop admitting first (jobs and health flip immediately),
	// then drain the evaluation pool, then close HTTP listeners —
	// poll/wait handlers keep answering while jobs settle.
	if err := srv.Shutdown(ctx); err != nil {
		logf("dfmd: drain budget exceeded, in-flight jobs canceled")
	}
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
	st := srv.Stats()
	logf("dfmd: drained (completed=%d failed=%d rejected=%d shed=%d deduped=%d cacheHits=%d)",
		st.Completed, st.Failed, st.Rejected, st.Shed, st.Deduped, st.CacheHits)
}
