// Command dfmscore runs the full DFM technique scorecard — the
// repository's headline experiment: every technique the DAC'08 panel
// debated, applied to synthetic workloads, measured, and judged
// hit/marginal/hype.
//
// The run goes through the fault-tolerant evaluation harness: the
// techniques execute in a bounded worker pool, each under its own
// wall-clock budget, with panic recovery and seed-perturbing retries
// for transient workload failures. A failing technique degrades to a
// structured per-technique error; the rest of the scorecard still
// reports.
//
// Usage:
//
//	dfmscore [-seed N] [-detail] [-json] [-parallel N] [-timeout D] [-retries N] [-metrics FILE]
//
// -metrics enables the observability registry for the run and writes
// its JSON snapshot (harness, litho, OPC, and per-technique stage
// metrics) to FILE, with "-" meaning stdout.
//
// Full-chip mode replaces the scorecard with the streaming scale
// experiment — generate an SoC floorplan and evaluate it through the
// halo-tiled engine:
//
//	dfmscore -chip [-chiprects N | -chipslots N] [-tile NM] [-halo NM]
//	         [-chipcache N] [-chipflat] [-chiphotspots] [-seed N] [-parallel N] [-json]
//	         [-cluster N [-policy P]]
//
// -chipflat additionally runs the flatten-everything baseline and
// fails (exit 1) unless the streamed result matches it exactly; only
// use it on chips small enough to flatten.
//
// -cluster N starts N in-process dfmd backends behind an in-process
// dfmrouter and fans the chip's tiles across them instead of
// computing in-process (tiling.DistEvaluate): extraction and seam
// stitching stay local, so the distributed result is bit-identical —
// -chipflat verifies the whole chain against the flat baseline.
//
// Exit status is 1 when any technique reports an error, in both
// table and JSON modes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/client"
	"repro/internal/dfm"
	"repro/internal/fleet"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/repair"
	"repro/internal/surrogate"
	"repro/internal/tech"
	"repro/internal/tiling"
)

func main() {
	seed := flag.Int64("seed", 11, "workload generation seed")
	detail := flag.Bool("detail", false, "print every metric, not just the primary")
	asJSON := flag.Bool("json", false, "emit the scorecard as JSON")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent technique evaluations (1 = sequential)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-technique wall-clock budget (0 = none)")
	retries := flag.Int("retries", 1, "extra attempts for retryable workload failures")
	metrics := flag.String("metrics", "", "write the run's metrics snapshot to this file (\"-\" = stdout)")
	chip := flag.Bool("chip", false, "full-chip mode: generate an SoC floorplan and run the tiled streaming evaluation")
	chipRects := flag.Int64("chiprects", 1_000_000, "chip mode: target flattened rect count (ignored when -chipslots > 0)")
	chipSlots := flag.Int("chipslots", 0, "chip mode: floorplan grid side (overrides -chiprects)")
	chipDefects := flag.Int("chipdefects", 8, "chip mode: injected spacing defects")
	tile := flag.Int64("tile", 24000, "chip mode: core tile size, nm")
	halo := flag.Int64("halo", 2000, "chip mode: DRC context halo, nm")
	chipCache := flag.Int("chipcache", 8192, "chip mode: result cache entries (0 disables reuse)")
	chipFlat := flag.Bool("chipflat", false, "chip mode: also run the flat baseline and verify an exact match")
	chipHot := flag.Bool("chiphotspots", false, "chip mode: include the metal1 litho hotspot scan")
	chipHotDef := flag.Int("chiphotdefects", 0, "chip mode: injected litho defect structures (pinch necks + bridge pad pairs)")
	chipInterior := flag.Bool("chipinterior", false, "chip mode: keep only interior (true-neck) pinch hotspots, dropping line-end pull-back markers")
	chipSurr := flag.Bool("chipsurrogate", false, "chip mode: gate the hotspot scan with the uncertainty-gated ML surrogate (implies -chipinterior)")
	chipDens := flag.Bool("chipdensity", true, "chip mode: include the density-window deck (its violation list dominates memory on sparse floorplans)")
	cluster := flag.Int("cluster", 0, "chip mode: fan tiles across N in-process dfmd backends behind a dfmrouter")
	policy := flag.String("policy", "affinity", "chip cluster mode: routing policy (affinity, least-loaded, round-robin)")
	repairFlag := flag.Bool("repair", false, "chip mode: run the in-design score-and-repair loop (weighted DFM score, auto-fixes, incremental re-evaluation)")
	fixRounds := flag.Int("fixrounds", 2, "repair mode: propose-check-apply-rescore rounds")
	repairDef := flag.Int("chiprepairdefects", 4, "repair mode: injected repairable via sites (under-enclosed pads + single cuts)")
	deltaBench := flag.Bool("deltabench", false, "repair mode: time the incremental dirty-region re-evaluation against a from-scratch run of the repaired chip")
	flag.Parse()

	if *metrics != "" {
		obs.SetEnabled(true)
	}

	// Ctrl-C cancels the run; in-flight techniques stop at their next
	// cancellation checkpoint and report as canceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	t := tech.N45()
	if *chip {
		if err := runChip(ctx, t, chipConfig{
			seed: *seed, rects: *chipRects, slots: *chipSlots, defects: *chipDefects,
			tile: *tile, halo: *halo, cache: *chipCache, flat: *chipFlat,
			hotspots: *chipHot, hotDefects: *chipHotDef, interior: *chipInterior,
			surrogate: *chipSurr, density: *chipDens, workers: *parallel, asJSON: *asJSON,
			cluster: *cluster, policy: *policy,
			repair: *repairFlag, fixRounds: *fixRounds, repairDefects: *repairDef,
			deltaBench: *deltaBench,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "dfmscore:", err)
			os.Exit(1)
		}
		if *metrics != "" {
			if err := obs.DumpDefault(*metrics); err != nil {
				fmt.Fprintln(os.Stderr, "dfmscore:", err)
				os.Exit(1)
			}
		}
		return
	}
	if !*asJSON {
		fmt.Printf("DFM scorecard on %s (half-pitch %dnm, k1=%.2f), seed %d\n\n",
			t.Name, t.HalfPitch(), t.K1(), *seed)
	}

	sc := dfm.RunAllConfig(ctx, t, *seed, dfm.Config{
		Parallel: *parallel,
		Timeout:  *timeout,
		Retries:  *retries,
		Backoff:  250 * time.Millisecond,
	})

	if *asJSON {
		b, err := sc.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfmscore:", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
	} else {
		fmt.Println(sc.Table())
		if *detail {
			fmt.Println(sc.Detail())
		}
		hit, marg, hype := sc.Hits()
		fmt.Printf("verdicts: %d hit, %d marginal, %d hype\n", hit, marg, hype)
	}

	if *metrics != "" {
		if err := obs.DumpDefault(*metrics); err != nil {
			fmt.Fprintln(os.Stderr, "dfmscore:", err)
			os.Exit(1)
		}
	}

	// One exit policy for every output mode: any technique error
	// fails the run.
	for _, o := range sc.Outcomes {
		if o.Err != nil {
			os.Exit(1)
		}
	}
}

// chipConfig carries the -chip flag set.
type chipConfig struct {
	seed    int64
	rects   int64
	slots   int
	defects int
	tile    int64
	halo    int64
	cache   int
	flat    bool

	hotspots   bool
	hotDefects int
	interior   bool
	surrogate  bool
	density    bool
	workers    int
	asJSON     bool
	cluster    int
	policy     string

	repair        bool
	fixRounds     int
	repairDefects int
	deltaBench    bool
}

// runChip executes the full-chip streaming experiment and prints its
// report. A -chipflat mismatch is an error: the tiled engine's whole
// claim is exact equivalence to the flat evaluation.
func runChip(ctx context.Context, t *tech.Tech, cfg chipConfig) error {
	if cfg.repair || cfg.deltaBench {
		return runRepair(ctx, t, cfg)
	}
	topts := tiling.Opts{
		Tile: cfg.tile, Halo: cfg.halo, Workers: cfg.workers,
		DRC: true, Density: cfg.density, DensityWindow: 3000,
		MaxViolations: 100_000,
	}
	if cfg.hotspots {
		topts.Hotspots = []tech.Layer{tech.Metal1}
	}
	topts.HotspotInterior = cfg.interior
	if cfg.surrogate {
		// The gate only pays off once line-end pull-back markers are
		// filtered — with them, every macro window is dirty and nothing
		// can be skipped — so the surrogate implies the interior filter.
		topts.HotspotInterior = true
		topts.Surrogate = &surrogate.Config{Seed: cfg.seed}
	}
	if cfg.cache > 0 {
		topts.Cache = tiling.NewCache(cfg.cache)
	}
	o := dfm.ChipEvalOpts{
		Chip: layout.ChipOpts{
			Seed: cfg.seed, Slots: cfg.slots, TargetRects: cfg.rects,
			Defects: cfg.defects, HotspotDefects: cfg.hotDefects,
		},
		Tiling:      topts,
		CompareFlat: cfg.flat,
	}
	var cl *fleet.Cluster
	if cfg.cluster > 0 {
		var err error
		cl, err = fleet.Start(fleet.Options{
			Nodes: cfg.cluster, Policy: cfg.policy,
			Logf: func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
		})
		if err != nil {
			return err
		}
		defer cl.Stop()
		if err := cl.WaitReady(10 * time.Second); err != nil {
			return err
		}
		o.Remote = &client.TileSubmitter{
			C:      client.New(cl.URL, nil),
			Policy: client.NewRetryPolicy(4, cfg.seed),
		}
		if !cfg.asJSON {
			fmt.Printf("distributing tiles across %d dfmd backends (%s policy) at %s\n",
				cfg.cluster, cl.RT.Stats().Policy, cl.URL)
		}
	}
	rep, res, err := dfm.EvalChipTiling(ctx, t, o)
	if err != nil {
		return err
	}

	if cfg.asJSON {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	} else {
		st := rep.Stats
		fmt.Printf("full-chip streaming evaluation on %s, seed %d\n", t.Name, cfg.seed)
		fmt.Printf("  chip:      %dx%d slots, die %.1fx%.1f mm, %d rects (generated in %v)\n",
			rep.Info.Slots, rep.Info.Slots,
			float64(rep.Info.Die.Width())/1e6, float64(rep.Info.Die.Height())/1e6,
			rep.Info.Rects, rep.GenElapsed.Round(time.Millisecond))
		fmt.Printf("  tiles:     %d (%d empty), tile %dnm halo %dnm, %.1f tiles/s, %v total\n",
			st.Tiles, st.EmptyTiles, cfg.tile, cfg.halo, rep.TilesPerSec,
			rep.Elapsed.Round(time.Millisecond))
		if st.TileHits+st.TileMisses > 0 {
			fmt.Printf("  reuse:     %d/%d tile hits (%.0f%%), %d window hits\n",
				st.TileHits, st.TileHits+st.TileMisses,
				100*float64(st.TileHits)/float64(st.TileHits+st.TileMisses),
				st.WindowHits)
		}
		if st.RemoteTiles+st.RemoteWindows > 0 {
			fmt.Printf("  fleet:     %d tiles + %d windows evaluated remotely, %d served cached + %d deduped fleet-side\n",
				st.RemoteTiles, st.RemoteWindows, st.RemoteCached, st.RemoteDeduped)
		}
		fmt.Printf("  results:   %d violations (%d dropped), %d hotspots\n",
			rep.Violations, res.Dropped, rep.Hotspots)
		for layer, sr := range rep.Surrogate {
			fmt.Printf("  surrogate: %s skipped %d/%d windows (%.0f%%, %d guarded, %d exact); holdout MAPE %.3f r %.3f P %.2f R %.2f\n",
				layer, sr.Skipped, sr.NonEmpty, 100*sr.SkipRate, sr.Guarded, sr.Exact,
				sr.MAPE, sr.Pearson, sr.Precision, sr.Recall)
		}
		if rep.DefectSites > 0 {
			fmt.Printf("  defects:   %d/%d injected litho defects found (recall %.2f)\n",
				rep.DefectsFound, rep.DefectSites, rep.DefectRecall)
		}
		fmt.Printf("  peak heap: %.1f MB tiled", float64(rep.PeakHeapTiled)/(1<<20))
		if cfg.flat {
			fmt.Printf(", %.1f MB flat (%.1fx); flat run %v",
				float64(rep.PeakHeapFlat)/(1<<20),
				float64(rep.PeakHeapFlat)/float64(rep.PeakHeapTiled),
				rep.FlatElapsed.Round(time.Millisecond))
		}
		fmt.Println()
	}
	if cfg.flat && !rep.Match {
		return fmt.Errorf("tiled result does NOT match flat baseline")
	}
	return nil
}

// repairReport is the -repair JSON payload.
type repairReport struct {
	ScoreBefore float64           `json:"scoreBefore"`
	ScoreAfter  float64           `json:"scoreAfter"`
	Applied     map[string]int    `json:"applied"`
	Rejected    int               `json:"rejected"`
	Skipped     map[string]int    `json:"skipped,omitempty"`
	Rounds      []repairRound     `json:"rounds"`
	DeltaEvals  int               `json:"deltaEvals"`
	FullEvals   int               `json:"fullEvals"`
	Elapsed     time.Duration     `json:"elapsedNs"`
	Bench       *deltaBenchReport `json:"deltaBench,omitempty"`
}

type repairRound struct {
	Proposed     int     `json:"proposed"`
	Applied      int     `json:"applied"`
	Rejected     int     `json:"rejected"`
	SplicedTiles int     `json:"splicedTiles"`
	Score        float64 `json:"score"`
}

// deltaBenchReport times the incremental re-evaluation of the repair
// loop's merged dirty region against a from-scratch run of the
// repaired chip.
type deltaBenchReport struct {
	Incremental time.Duration `json:"incrementalNs"`
	Full        time.Duration `json:"fullNs"`
	Speedup     float64       `json:"speedup"`
	Match       bool          `json:"match"`
}

// runRepair executes the in-design score-and-repair loop on a
// generated chip: weighted scoring, legality-checked auto-fixes, and
// incremental dirty-region re-scoring between rounds.
func runRepair(ctx context.Context, t *tech.Tech, cfg chipConfig) error {
	if cfg.surrogate {
		return fmt.Errorf("-repair is incompatible with -chipsurrogate: surrogate gating is chip-global, the repair loop re-scores incrementally")
	}
	if cfg.cluster > 0 {
		return fmt.Errorf("-repair runs in-process (in-design loop); drop -cluster")
	}
	topts := tiling.Opts{
		Tile: cfg.tile, Halo: cfg.halo, Workers: cfg.workers,
		DRC: true, Density: cfg.density, DensityWindow: 3000,
		MaxViolations: 100_000,
	}
	if cfg.hotspots {
		topts.Hotspots = []tech.Layer{tech.Metal1}
		topts.HotspotInterior = cfg.interior
	}
	l, info, err := layout.GenerateChip(t, layout.ChipOpts{
		Seed: cfg.seed, Slots: cfg.slots, TargetRects: cfg.rects,
		Defects: cfg.defects, HotspotDefects: cfg.hotDefects,
		RepairDefects: cfg.repairDefects,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	out, err := repair.Run(ctx, t, l.Top, repair.Opts{Eval: topts, Rounds: cfg.fixRounds})
	if err != nil {
		return err
	}
	rep := repairReport{
		ScoreBefore: out.Before.Total, ScoreAfter: out.After.Total,
		Applied: out.AppliedByKind(), Rejected: len(out.Rejected), Skipped: out.Skipped,
		DeltaEvals: out.DeltaEvals, FullEvals: out.FullEvals,
		Elapsed: time.Since(start),
	}
	for _, r := range out.Rounds {
		rep.Rounds = append(rep.Rounds, repairRound{
			Proposed: r.Proposed, Applied: r.Applied, Rejected: r.Rejected,
			SplicedTiles: r.SplicedTiles, Score: r.Score,
		})
	}

	if cfg.deltaBench {
		b, err := benchDelta(ctx, t, l.Top, out, topts)
		if err != nil {
			return err
		}
		rep.Bench = b
	}

	if cfg.asJSON {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	} else {
		fmt.Printf("in-design score-and-repair on %s, seed %d\n", t.Name, cfg.seed)
		fmt.Printf("  chip:    %dx%d slots, %d rects, %d spacing defects, %d repair sites\n",
			info.Slots, info.Slots, info.Rects, len(info.DefectBoxes), len(info.RepairSites))
		fmt.Printf("  score:   %.1f -> %.1f weighted DFM cost\n", out.Before.Total, out.After.Total)
		fmt.Printf("  fixes:   %v applied, %d rejected (all legality-checked), skipped %v\n",
			rep.Applied, rep.Rejected, rep.Skipped)
		for i, r := range out.Rounds {
			if r.Proposed == 0 {
				fmt.Printf("  round %d: converged, nothing left to propose\n", i+1)
				continue
			}
			fmt.Printf("  round %d: %d proposed, %d applied, %d rejected, %d tiles spliced, score %.1f\n",
				i+1, r.Proposed, r.Applied, r.Rejected, r.SplicedTiles, r.Score)
		}
		fmt.Printf("  re-eval: %d incremental, %d full, %v total\n",
			out.DeltaEvals, out.FullEvals, rep.Elapsed.Round(time.Millisecond))
		if rep.Bench != nil {
			fmt.Printf("  delta:   incremental %v vs full %v (%.1fx), results identical: %v\n",
				rep.Bench.Incremental.Round(time.Millisecond), rep.Bench.Full.Round(time.Millisecond),
				rep.Bench.Speedup, rep.Bench.Match)
		}
	}
	if rep.Bench != nil && !rep.Bench.Match {
		return fmt.Errorf("incremental re-evaluation does NOT match the from-scratch run")
	}
	return nil
}

// benchDelta replays the repair loop's merged edits as one delta
// against a fresh snapshot of the original chip and times it against a
// from-scratch evaluation of the repaired chip — both uncached, both
// verified equivalent.
func benchDelta(ctx context.Context, t *tech.Tech, orig *layout.Cell, out *repair.Outcome, topts tiling.Opts) (*deltaBenchReport, error) {
	var dirty repair.Delta
	for _, f := range out.Applied {
		dirty.Merge(f.Delta)
	}
	_, snap, err := tiling.EvaluateSnap(ctx, t, tiling.NewExtractor(orig), topts)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	incRes, _, err := tiling.EvaluateDelta(ctx, t, tiling.NewExtractor(out.Top), snap, dirty.Rects())
	if err != nil {
		return nil, err
	}
	incremental := time.Since(t0)
	t1 := time.Now()
	fullRes, err := tiling.EvaluateChip(ctx, t, out.Top, topts)
	if err != nil {
		return nil, err
	}
	full := time.Since(t1)
	return &deltaBenchReport{
		Incremental: incremental, Full: full,
		Speedup: float64(full) / float64(incremental),
		Match:   tiling.Equivalent(incRes, fullRes),
	}, nil
}
