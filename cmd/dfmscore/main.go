// Command dfmscore runs the full DFM technique scorecard — the
// repository's headline experiment: every technique the DAC'08 panel
// debated, applied to synthetic workloads, measured, and judged
// hit/marginal/hype.
//
// The run goes through the fault-tolerant evaluation harness: the
// techniques execute in a bounded worker pool, each under its own
// wall-clock budget, with panic recovery and seed-perturbing retries
// for transient workload failures. A failing technique degrades to a
// structured per-technique error; the rest of the scorecard still
// reports.
//
// Usage:
//
//	dfmscore [-seed N] [-detail] [-json] [-parallel N] [-timeout D] [-retries N] [-metrics FILE]
//
// -metrics enables the observability registry for the run and writes
// its JSON snapshot (harness, litho, OPC, and per-technique stage
// metrics) to FILE, with "-" meaning stdout.
//
// Exit status is 1 when any technique reports an error, in both
// table and JSON modes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/dfm"
	"repro/internal/obs"
	"repro/internal/tech"
)

func main() {
	seed := flag.Int64("seed", 11, "workload generation seed")
	detail := flag.Bool("detail", false, "print every metric, not just the primary")
	asJSON := flag.Bool("json", false, "emit the scorecard as JSON")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent technique evaluations (1 = sequential)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-technique wall-clock budget (0 = none)")
	retries := flag.Int("retries", 1, "extra attempts for retryable workload failures")
	metrics := flag.String("metrics", "", "write the run's metrics snapshot to this file (\"-\" = stdout)")
	flag.Parse()

	if *metrics != "" {
		obs.SetEnabled(true)
	}

	// Ctrl-C cancels the run; in-flight techniques stop at their next
	// cancellation checkpoint and report as canceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	t := tech.N45()
	if !*asJSON {
		fmt.Printf("DFM scorecard on %s (half-pitch %dnm, k1=%.2f), seed %d\n\n",
			t.Name, t.HalfPitch(), t.K1(), *seed)
	}

	sc := dfm.RunAllConfig(ctx, t, *seed, dfm.Config{
		Parallel: *parallel,
		Timeout:  *timeout,
		Retries:  *retries,
		Backoff:  250 * time.Millisecond,
	})

	if *asJSON {
		b, err := sc.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfmscore:", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
	} else {
		fmt.Println(sc.Table())
		if *detail {
			fmt.Println(sc.Detail())
		}
		hit, marg, hype := sc.Hits()
		fmt.Printf("verdicts: %d hit, %d marginal, %d hype\n", hit, marg, hype)
	}

	if *metrics != "" {
		if err := obs.DumpDefault(*metrics); err != nil {
			fmt.Fprintln(os.Stderr, "dfmscore:", err)
			os.Exit(1)
		}
	}

	// One exit policy for every output mode: any technique error
	// fails the run.
	for _, o := range sc.Outcomes {
		if o.Err != nil {
			os.Exit(1)
		}
	}
}
