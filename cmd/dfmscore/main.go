// Command dfmscore runs the full DFM technique scorecard — the
// repository's headline experiment: every technique the DAC'08 panel
// debated, applied to synthetic workloads, measured, and judged
// hit/marginal/hype.
//
// Usage:
//
//	dfmscore [-seed N] [-detail]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dfm"
	"repro/internal/tech"
)

func main() {
	seed := flag.Int64("seed", 11, "workload generation seed")
	detail := flag.Bool("detail", false, "print every metric, not just the primary")
	asJSON := flag.Bool("json", false, "emit the scorecard as JSON")
	flag.Parse()

	t := tech.N45()
	if !*asJSON {
		fmt.Printf("DFM scorecard on %s (half-pitch %dnm, k1=%.2f), seed %d\n\n",
			t.Name, t.HalfPitch(), t.K1(), *seed)
	}

	sc := dfm.RunAll(t, *seed)
	if *asJSON {
		b, err := sc.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfmscore:", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
		return
	}
	fmt.Println(sc.Table())
	if *detail {
		fmt.Println(sc.Detail())
	}
	hit, marg, hype := sc.Hits()
	fmt.Printf("verdicts: %d hit, %d marginal, %d hype\n", hit, marg, hype)
	for _, o := range sc.Outcomes {
		if o.Err != nil {
			os.Exit(1)
		}
	}
}
