// Command dfmrouter fronts a fleet of dfmd nodes with cache-affinity
// routing and chaos-tolerant failover: requests route by policy
// (content-address affinity over the result-cache key by default, or
// round-robin / least-loaded), sick backends are evicted by active
// health probes and reinstated only after proving recovery, circuit
// breakers react between probes at request speed, and failed attempts
// retry on another replica under a jittered backoff and a bounded
// retry budget — a dying cluster sheds load instead of retry-storming
// itself.
//
// Usage:
//
//	dfmrouter -backends URL1,URL2,... [-addr HOST:PORT]
//	          [-policy affinity|least-loaded|round-robin] [-vnodes N]
//	          [-check-interval D] [-check-timeout D]
//	          [-fail-after N] [-rise-after N]
//	          [-breaker-threshold N] [-breaker-cooldown D]
//	          [-max-attempts N] [-retry-base D] [-retry-max D]
//	          [-attempt-timeout D] [-retry-budget N]
//	          [-drain D] [-quiet]
//
// The API is wire-compatible with a single dfmd node (see
// internal/router.Handler); job IDs gain a backend prefix
// ("n2.j-000017") so polls route back to the node that owns the job.
//
// SIGINT/SIGTERM begins a graceful drain mirroring dfmd's: new
// submissions answer 503 immediately, requests already being routed
// finish (failovers included) within the -drain budget, then the
// health probers stop.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/router"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9516", "listen address")
	backends := flag.String("backends", "", "comma-separated dfmd base URLs (required)")
	policy := flag.String("policy", "affinity", "routing policy: affinity, least-loaded, or round-robin")
	vnodes := flag.Int("vnodes", 128, "virtual nodes per backend on the affinity ring")
	checkInterval := flag.Duration("check-interval", 500*time.Millisecond, "health probe interval")
	checkTimeout := flag.Duration("check-timeout", time.Second, "health probe timeout")
	failAfter := flag.Int("fail-after", 3, "consecutive failed probes before eviction")
	riseAfter := flag.Int("rise-after", 2, "consecutive clean probes before reinstatement")
	brThreshold := flag.Int("breaker-threshold", 5, "consecutive data-path failures before a backend's circuit opens")
	brCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "open-circuit cooldown before a half-open trial")
	maxAttempts := flag.Int("max-attempts", 3, "total tries per request across replicas")
	retryBase := flag.Duration("retry-base", 25*time.Millisecond, "first-retry backoff (doubles per retry, jittered)")
	retryMax := flag.Duration("retry-max", 2*time.Second, "backoff cap")
	attemptTimeout := flag.Duration("attempt-timeout", time.Minute, "per-attempt budget so black-holed backends become failovers (0 = none)")
	retryBudget := flag.Int("retry-budget", 100, "retry-budget token bucket size")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget on shutdown")
	quiet := flag.Bool("quiet", false, "suppress lifecycle log lines")
	flag.Parse()

	if *backends == "" {
		fmt.Fprintln(os.Stderr, "dfmrouter: -backends is required")
		os.Exit(2)
	}

	// /metrics serves the obs registry; recording must be on for it
	// to tell the truth.
	obs.SetEnabled(true)

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	r, err := router.New(router.Config{
		Backends:         strings.Split(*backends, ","),
		Policy:           *policy,
		Vnodes:           *vnodes,
		CheckInterval:    *checkInterval,
		CheckTimeout:     *checkTimeout,
		FailAfter:        *failAfter,
		RiseAfter:        *riseAfter,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		MaxAttempts:      *maxAttempts,
		RetryBase:        *retryBase,
		RetryMax:         *retryMax,
		AttemptTimeout:   *attemptTimeout,
		RetryBudget:      *retryBudget,
		Logf:             logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfmrouter:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfmrouter:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: r.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logf("dfmrouter: serving on http://%s (policy=%s backends=%d)",
		ln.Addr(), *policy, len(strings.Split(*backends, ",")))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "dfmrouter:", err)
		os.Exit(1)
	case s := <-sig:
		logf("dfmrouter: %v — draining (budget %v)", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		logf("dfmrouter: drain budget exceeded, in-flight routing abandoned")
	}
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
	st := r.Stats()
	logf("dfmrouter: drained (ok=%d failed=%d retries=%d failovers=%d)",
		st.OK, st.Failed, st.Retries, st.Failovers)
}
