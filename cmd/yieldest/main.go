// Command yieldest estimates defect-limited yield for a layout:
// per-layer short/open critical areas, Poisson and negative-binomial
// yields, via redundancy statistics, and optionally a Monte Carlo
// defect-injection cross-check and a redundant-via what-if.
//
// Usage:
//
//	yieldest [-mc 20000] [-dvia] layout.txt
//	yieldest -gen -seed 3
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dvia"
	"repro/internal/layout"
	"repro/internal/tech"
	yieldpkg "repro/internal/yield"
)

func main() {
	gen := flag.Bool("gen", false, "generate a block instead of reading a file")
	seed := flag.Int64("seed", 1, "generation seed")
	mc := flag.Int("mc", 0, "Monte Carlo defect trials (0 = skip)")
	whatIf := flag.Bool("dvia", false, "evaluate redundant-via insertion")
	flag.Parse()

	var l *layout.Layout
	var err error
	switch {
	case *gen:
		l, err = layout.GenerateBlock(tech.N45(), layout.BlockOpts{
			Rows: 4, RowWidth: 12000, Nets: 25, MaxFan: 4, Seed: *seed,
		})
	case flag.NArg() == 1:
		var f *os.File
		f, err = os.Open(flag.Arg(0))
		if err == nil {
			defer f.Close()
			l, err = layout.Read(f)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: yieldest [-mc N] [-dvia] layout.txt | yieldest -gen")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "yieldest:", err)
		os.Exit(1)
	}
	t := l.Tech
	if t == nil {
		t = tech.N45()
	}

	flat := l.Flatten()
	rep := yieldpkg.AnalyzeChip(flat, t)
	fmt.Printf("%s: D0=%.2f/cm2, x in [%.0f, %.0f]nm, alpha=%.1f\n",
		l.Top.Name, t.Defects.D0, t.Defects.X0, t.Defects.XMax, t.Defects.Alpha)
	fmt.Printf("%-8s %14s %14s %8s %8s %8s\n", "layer", "shortAC nm2", "openAC nm2", "Yshort", "Yopen", "Y")
	for _, lr := range rep.Layers {
		fmt.Printf("%-8s %14.3g %14.3g %8.5f %8.5f %8.5f\n",
			lr.Layer, lr.ShortAC, lr.OpenAC, lr.YShort, lr.YOpen, lr.YCombined)
	}
	fmt.Printf("vias: %d total, %d redundant pairs, Yvia=%.6f\n", rep.NVias, rep.NPairs, rep.YVia)
	fmt.Printf("total yield: %.5f\n", rep.YTotal)

	if *mc > 0 {
		res := yieldpkg.MonteCarlo(flat, tech.Metal2, t.Defects, *mc, rand.New(rand.NewSource(99)))
		fmt.Printf("monte carlo (metal2, %d trials): %d shorts, %d opens\n",
			res.Trials, res.Shorts, res.Opens)
	}
	if *whatIf {
		g, err := dvia.EvaluateInsertion(context.Background(), flat, t)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yieldest:", err)
			os.Exit(1)
		}
		fmt.Printf("redundant-via what-if: singles %d -> %d, Yvia %.6f -> %.6f (%d cuts added)\n",
			g.SinglesBefore, g.SinglesAfter, g.Before, g.After, g.AddedCuts)
	}
}
