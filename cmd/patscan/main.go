// Command patscan builds the layout pattern catalog of one layer:
// class counts, coverage curve, and (with a second layout) the KL
// divergence and outlier classes between two designs.
//
// Usage:
//
//	patscan [-layer metal1] [-radius 200] a.txt [b.txt]
//	patscan -gen -seed 1 [-seed2 2]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/pattern"
	"repro/internal/tech"
)

func main() {
	layerName := flag.String("layer", "metal1", "layer to catalog")
	radius := flag.Int64("radius", 200, "pattern window radius, nm")
	gen := flag.Bool("gen", false, "generate blocks instead of reading files")
	seed := flag.Int64("seed", 1, "generation seed for design A")
	seed2 := flag.Int64("seed2", 2, "generation seed for design B")
	flag.Parse()

	layer, err := tech.ParseLayer(*layerName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "patscan:", err)
		os.Exit(1)
	}

	var layers [][]geom.Rect
	var names []string
	switch {
	case *gen:
		for _, s := range []int64{*seed, *seed2} {
			l, err := layout.GenerateBlock(tech.N45(), layout.BlockOpts{
				Rows: 3, RowWidth: 8000, Nets: 12, MaxFan: 3, Seed: s,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "patscan:", err)
				os.Exit(1)
			}
			layers = append(layers, layout.ByLayer(l.Flatten())[layer])
			names = append(names, fmt.Sprintf("gen-seed%d", s))
		}
	case flag.NArg() >= 1:
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "patscan:", err)
				os.Exit(1)
			}
			l, err := layout.Read(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "patscan:", err)
				os.Exit(1)
			}
			layers = append(layers, layout.ByLayer(l.Flatten())[layer])
			names = append(names, path)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: patscan [-layer L] a.txt [b.txt] | patscan -gen")
		os.Exit(2)
	}

	cats := make([]*pattern.Catalog, len(layers))
	for i, rs := range layers {
		cats[i] = pattern.NewCatalog(*radius)
		n := cats[i].AddLayer(rs)
		fmt.Printf("%s (%s, r=%d): %d anchors, %d classes\n",
			names[i], layer, *radius, n, cats[i].NumClasses())
		for _, k := range []int{1, 5, 10, 20} {
			fmt.Printf("  top-%-3d coverage: %.1f%%\n", k, 100*cats[i].Coverage(k))
		}
		fmt.Printf("  classes for 90%% coverage: %d\n", cats[i].ClassesFor(0.90))
		for j, cl := range cats[i].Classes() {
			if j >= 5 {
				break
			}
			fmt.Printf("  #%d id=%016x count=%d %v\n", j+1, cl.ID, cl.Count, cl.Rep)
		}
	}

	if len(cats) >= 2 {
		fmt.Printf("\nKL(A||B) = %.4f  KL(B||A) = %.4f\n",
			cats[0].KLDivergence(cats[1]), cats[1].KLDivergence(cats[0]))
		out := cats[0].Outliers(cats[1], 10, 5)
		fmt.Printf("outlier classes in A vs B (>=10x, >=5 hits): %d\n", len(out))
		for i, cl := range out {
			if i >= 5 {
				break
			}
			fmt.Printf("  id=%016x count=%d\n", cl.ID, cl.Count)
		}
	}
}
