// Command dfmload is a deterministic open-loop load generator for
// dfmd: arrivals fire on a fixed schedule derived from -rate,
// independent of how fast the server answers (so queueing delay shows
// up as latency, exactly like production traffic), and a seeded RNG
// draws each request either fresh or as a duplicate of an earlier one
// (-dup), exercising the server's singleflight and content-addressed
// cache paths on purpose.
//
// Usage:
//
//	dfmload [-addr URL | -selfserve | -cluster N] [-rate R] [-duration D]
//	        [-dup F] [-unique N] [-techniques a,b] [-seed N] [-timeout D]
//	        [-retries N] [-wait-ready D] [-bench]
//	        [-policy P] [-kill D] [-restart D]   (cluster mode)
//
// Cluster mode (-cluster N) starts N in-process dfmd backends behind
// an in-process dfmrouter (internal/fleet) and aims the load at the
// router. -kill D hard-kills backend n0 (listener and all live
// connections dropped) D after the load starts; -restart D brings a
// fresh dfmd up on the same port. That is the chaos experiment: an
// open-loop burst, a node dying mid-burst, and the router's failover
// path on the hook for every in-flight request. The report adds
// router counters (failovers, evictions, reinstatements) and the
// cluster-wide cache hit rate — the number that decides whether
// affinity routing is hit or hype versus round-robin.
//
// Full-chip fleet mode (-cluster N -chip) swaps the open-loop
// technique load for the distributed tiling experiment: two SoC
// floorplans (seeds -seed and -seed+1, sharing macro content) are
// each evaluated single-process and then fanned tile-by-tile across
// the fleet through the router (tiling.DistEvaluate), with the chaos
// schedule killing and restarting a backend mid-chip. The run fails
// unless every distributed result is bit-identical to its
// single-process twin, and reports local vs distributed per-tile
// latency plus the fleet-wide duplicate-tile hit rate across the two
// chips (`make fleetbench`).
//
// The report prints sent/ok/shed/failed counts, client-side
// p50/p95/p99/max end-to-end latency, and the server's own counters
// read from /metrics. With -bench the percentiles are also emitted as
// `go test -bench`-shaped lines so `benchjson` can fold a serving run
// into the benchmark trend record (`make servebench`,
// `make clusterbench`).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/fleet"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/tech"
	"repro/internal/tiling"
)

type loadCfg struct {
	addr       string
	selfserve  bool
	cluster    int
	policy     string
	kill       time.Duration
	restart    time.Duration
	rate       float64
	duration   time.Duration
	dup        float64
	unique     int
	techniques []string
	seed       int64
	timeout    time.Duration
	retries    int
	waitReady  time.Duration
	bench      bool

	chip      bool
	chipRects int64
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:9517", "dfmd (or dfmrouter) base URL")
	selfserve := flag.Bool("selfserve", false, "start an in-process dfmd on an ephemeral port instead of dialing -addr")
	cluster := flag.Int("cluster", 0, "start N in-process dfmd backends behind an in-process dfmrouter")
	policy := flag.String("policy", "affinity", "cluster routing policy: affinity, least-loaded, or round-robin")
	kill := flag.Duration("kill", 0, "cluster mode: hard-kill backend n0 this long after the load starts (0 = never)")
	restart := flag.Duration("restart", 0, "cluster mode: restart the killed backend this long after the load starts (0 = never)")
	rate := flag.Float64("rate", 50, "open-loop arrival rate, requests/second")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	dup := flag.Float64("dup", 0.5, "fraction of requests that duplicate an earlier one")
	unique := flag.Int("unique", 16, "distinct workload seeds to draw from")
	techniques := flag.String("techniques", "sraf", "comma-separated techniques to request")
	seed := flag.Int64("seed", 1, "generator seed (same seed, same request stream)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	retries := flag.Int("retries", 0, "client-side retries per request (client.EvalWithRetry)")
	waitReady := flag.Duration("wait-ready", 10*time.Second, "poll /healthz this long for the server to come up")
	bench := flag.Bool("bench", false, "emit benchmark-format result lines for benchjson")
	chip := flag.Bool("chip", false, "cluster mode: run the distributed full-chip tiling experiment instead of the open-loop technique load")
	chipRects := flag.Int64("chiprects", 150_000, "chip mode: target flattened rect count per chip")
	flag.Parse()

	cfg := loadCfg{
		addr: *addr, selfserve: *selfserve, cluster: *cluster,
		policy: *policy, kill: *kill, restart: *restart,
		rate: *rate, duration: *duration, dup: *dup, unique: *unique,
		techniques: strings.Split(*techniques, ","), seed: *seed,
		timeout: *timeout, retries: *retries, waitReady: *waitReady,
		bench: *bench, chip: *chip, chipRects: *chipRects,
	}
	var err error
	if cfg.chip {
		err = runFleetChip(cfg)
	} else {
		err = run(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfmload:", err)
		os.Exit(1)
	}
}

func run(cfg loadCfg) error {
	if cfg.rate <= 0 || cfg.duration <= 0 {
		return fmt.Errorf("need positive -rate and -duration")
	}
	var cl *fleet.Cluster
	switch {
	case cfg.cluster > 0:
		var err error
		cl, err = fleet.Start(fleet.Options{Nodes: cfg.cluster, Policy: cfg.policy})
		if err != nil {
			return err
		}
		defer cl.Stop()
		cfg.addr = cl.URL
		fmt.Printf("cluster: %d backends behind %s router at %s\n",
			cfg.cluster, cl.RT.Stats().Policy, cl.URL)
	case cfg.selfserve:
		stop, url, err := startInProcess()
		if err != nil {
			return err
		}
		defer stop()
		cfg.addr = url
	}
	c := client.New(cfg.addr, nil)

	// Readiness: a cold dfmd (or one still binding) answers within
	// the wait-ready budget; the clock starts only once it does.
	readyCtx, cancel := context.WithTimeout(context.Background(), cfg.waitReady)
	defer cancel()
	for {
		if err := c.Healthz(readyCtx); err == nil {
			break
		}
		select {
		case <-readyCtx.Done():
			return fmt.Errorf("server at %s not ready within %v", cfg.addr, cfg.waitReady)
		case <-time.After(100 * time.Millisecond):
		}
	}

	// Deterministic request stream: every arrival is drawn up front.
	rng := rand.New(rand.NewSource(cfg.seed))
	total := int(cfg.rate * cfg.duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / cfg.rate)
	reqs := make([]server.JobRequest, total)
	var used []server.JobRequest
	for i := range reqs {
		if len(used) > 0 && rng.Float64() < cfg.dup {
			reqs[i] = used[rng.Intn(len(used))]
		} else {
			reqs[i] = server.JobRequest{
				Technique: cfg.techniques[rng.Intn(len(cfg.techniques))],
				Seed:      cfg.seed + int64(rng.Intn(cfg.unique)),
			}
			used = append(used, reqs[i])
		}
	}

	var before server.Stats
	if cl == nil {
		var err error
		before, _, err = c.Metrics(context.Background())
		if err != nil {
			return fmt.Errorf("metrics before run: %w", err)
		}
	}

	// One shared retry policy: the same battle-tested backoff loop
	// the router uses internally, seeded for a reproducible schedule.
	retryPolicy := client.NewRetryPolicy(cfg.retries+1, cfg.seed)

	type outcome struct {
		lat    time.Duration
		state  string // ok | shed | draining | failed
		cached bool
		dedup  bool
	}
	outs := make([]outcome, total)
	var wg sync.WaitGroup
	start := time.Now()
	if cl != nil {
		cl.Schedule(start, cfg.kill, cfg.restart)
	}
	for i := range reqs {
		// Open loop: fire at the scheduled instant no matter how many
		// responses are still outstanding.
		if sleep := start.Add(time.Duration(i) * interval).Sub(time.Now()); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
			defer cancel()
			t0 := time.Now()
			st, err := c.EvalWithRetry(ctx, reqs[i], retryPolicy)
			lat := time.Since(t0)
			switch {
			case err == nil && st.State == server.StateDone:
				outs[i] = outcome{lat: lat, state: "ok", cached: st.Cached, dedup: st.Deduped}
			case isOverloaded(err):
				outs[i] = outcome{lat: lat, state: "shed"}
			case errors.Is(err, client.ErrDraining):
				outs[i] = outcome{lat: lat, state: "draining"}
			default:
				outs[i] = outcome{lat: lat, state: "failed"}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var ok, shed, failed, cached, dedup int
	var lats []time.Duration
	for _, o := range outs {
		switch o.state {
		case "ok":
			ok++
			lats = append(lats, o.lat)
			if o.cached {
				cached++
			}
			if o.dedup {
				dedup++
			}
		case "shed":
			shed++
		default:
			failed++
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(q*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}

	fmt.Printf("dfmload: %d requests over %.1fs (open-loop %.1f/s, dup %.0f%%, %d unique): %d ok, %d shed, %d failed\n",
		total, elapsed.Seconds(), cfg.rate, 100*cfg.dup, cfg.unique, ok, shed, failed)
	if ok > 0 {
		fmt.Printf("client e2e latency: p50 %v  p95 %v  p99 %v  max %v\n",
			pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
		fmt.Printf("served from: %d cache hits, %d deduped in-flight, %d fresh evaluations (client view)\n",
			cached, dedup, ok-cached-dedup)
	}

	benchName := "Serve"
	var hitPermil int64 = -1
	if cl != nil {
		benchName = "Cluster" + cl.BenchName
		hitPermil = cl.Report()
	} else {
		after, _, err := c.Metrics(context.Background())
		if err != nil {
			return fmt.Errorf("metrics after run: %w", err)
		}
		fmt.Printf("server counters (this run): admitted=%d shed=%d deduped=%d cacheHits=%d cacheMisses=%d completed=%d failed=%d\n",
			after.Admitted-before.Admitted, after.Shed-before.Shed,
			after.Deduped-before.Deduped, after.CacheHits-before.CacheHits,
			after.CacheMisses-before.CacheMisses, after.Completed-before.Completed,
			after.Failed-before.Failed)
	}
	fmt.Printf("sustained throughput: %.1f ok/s\n", float64(ok)/elapsed.Seconds())

	if cfg.bench && ok > 0 {
		// benchjson-parseable lines: iterations = completed requests,
		// ns/op = the percentile (or mean inter-completion time for
		// the throughput line).
		fmt.Printf("Benchmark%sE2Ep50 \t%8d\t%12.0f ns/op\n", benchName, ok, float64(pct(0.50)))
		fmt.Printf("Benchmark%sE2Ep95 \t%8d\t%12.0f ns/op\n", benchName, ok, float64(pct(0.95)))
		fmt.Printf("Benchmark%sE2Ep99 \t%8d\t%12.0f ns/op\n", benchName, ok, float64(pct(0.99)))
		fmt.Printf("Benchmark%sThroughput \t%8d\t%12.0f ns/op\n", benchName, ok, float64(elapsed)/float64(ok))
		if hitPermil >= 0 {
			// Cluster-wide cache hit rate in permil (hits per 1000
			// admissions across all backends) and the failed-request
			// count — the two headline numbers of the chaos run.
			fmt.Printf("Benchmark%sCacheHitPermil \t%8d\t%12.0f ns/op\n", benchName, ok, float64(hitPermil))
			fmt.Printf("Benchmark%sFailedReqs \t%8d\t%12.0f ns/op\n", benchName, total, float64(failed))
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d requests failed", failed)
	}
	return nil
}

func isOverloaded(err error) bool {
	var ov *client.Overloaded
	return errors.As(err, &ov)
}

// startInProcess runs a dfmd instance inside this process on an
// ephemeral port — no external server to manage for quick runs.
func startInProcess() (stop func(), url string, err error) {
	obs.SetEnabled(true)
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // closed on stop
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		hs.Close()
	}, "http://" + ln.Addr().String(), nil
}

// runFleetChip is the distributed full-chip experiment: two chips
// whose floorplans share macro content (consecutive seeds draw from
// the same seed-independent macro library), each evaluated locally and
// then fanned across the fleet, with the chaos schedule riding the
// first distributed run. Fails unless every distributed result is
// bit-identical to its single-process twin.
func runFleetChip(cfg loadCfg) error {
	if cfg.cluster < 1 {
		return fmt.Errorf("-chip needs -cluster N (the distributed run wants a fleet)")
	}
	cl, err := fleet.Start(fleet.Options{Nodes: cfg.cluster, Policy: cfg.policy})
	if err != nil {
		return err
	}
	defer cl.Stop()
	if err := cl.WaitReady(cfg.waitReady); err != nil {
		return err
	}
	fmt.Printf("fleet chip: %d backends behind %s router at %s\n",
		cfg.cluster, cl.RT.Stats().Policy, cl.URL)

	t := tech.N45()
	topts := tiling.Opts{
		Tile: 24000, Halo: 2000, Workers: runtime.GOMAXPROCS(0),
		DRC: true, Density: true, DensityWindow: 3000,
		MaxViolations: 100_000,
		// No local tile cache: every unit goes to the fleet, so the
		// duplicate-tile rate below is measured fleet-wide, not hidden
		// behind in-process reuse.
	}
	sub := &client.TileSubmitter{
		C:      client.New(cl.URL, nil),
		Policy: client.NewRetryPolicy(cfg.retries+4, cfg.seed),
	}

	ctx := context.Background()
	var (
		mismatches         int
		tiles              int64
		localNS, distNS    int64
		remCache, remDedup int64
	)
	for ci, seed := range []int64{cfg.seed, cfg.seed + 1} {
		l, info, err := layout.GenerateChip(t, layout.ChipOpts{
			Seed: seed, TargetRects: cfg.chipRects, Defects: 8,
		})
		if err != nil {
			return fmt.Errorf("generate chip %d: %w", ci+1, err)
		}
		local, err := tiling.Evaluate(ctx, t, tiling.NewExtractor(l.Top), topts)
		if err != nil {
			return fmt.Errorf("chip %d local evaluation: %w", ci+1, err)
		}
		if ci == 0 && cfg.kill > 0 {
			cl.Schedule(time.Now(), cfg.kill, cfg.restart)
		}
		dist, err := tiling.DistEvaluate(ctx, t, tiling.NewExtractor(l.Top), topts, sub)
		if err != nil {
			return fmt.Errorf("chip %d distributed evaluation: %w", ci+1, err)
		}
		match := tiling.Equivalent(local, dist)
		if !match {
			mismatches++
		}
		tiles += int64(local.Stats.Tiles)
		localNS += int64(local.Stats.Elapsed)
		distNS += int64(dist.Stats.Elapsed)
		remCache += dist.Stats.RemoteCached
		remDedup += dist.Stats.RemoteDeduped
		fmt.Printf("chip %d (seed %d): %d rects, %d tiles; local %v (%.1f tiles/s), dist %v (%.1f tiles/s), match=%v\n",
			ci+1, seed, info.Rects, local.Stats.Tiles,
			local.Stats.Elapsed.Round(time.Millisecond),
			float64(local.Stats.Tiles)/local.Stats.Elapsed.Seconds(),
			dist.Stats.Elapsed.Round(time.Millisecond),
			float64(dist.Stats.Tiles)/dist.Stats.Elapsed.Seconds(), match)
	}

	cl.Report()
	rs := cl.RT.Stats()
	var dupPermil int64
	if rs.TileJobs > 0 {
		dupPermil = rs.TileReused * 1000 / rs.TileJobs
	}
	fmt.Printf("fleet duplicate-tile hit rate: %.1f%% (%d of %d routed units; submitter saw %d cached + %d deduped)\n",
		float64(dupPermil)/10, rs.TileReused, rs.TileJobs, remCache, remDedup)

	if cfg.bench && tiles > 0 {
		name := "FleetChip" + cl.BenchName
		fmt.Printf("Benchmark%sLocal \t%8d\t%12.0f ns/op\n", name, tiles, float64(localNS)/float64(tiles))
		fmt.Printf("Benchmark%sDist \t%8d\t%12.0f ns/op\n", name, tiles, float64(distNS)/float64(tiles))
		fmt.Printf("Benchmark%sDupPermil \t%8d\t%12.0f ns/op\n", name, rs.TileJobs, float64(dupPermil))
		fmt.Printf("Benchmark%sMismatches \t%8d\t%12.0f ns/op\n", name, 2, float64(mismatches))
	}
	if mismatches > 0 {
		return fmt.Errorf("%d of 2 distributed chip results diverged from single-process", mismatches)
	}
	return nil
}
