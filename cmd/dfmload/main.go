// Command dfmload is a deterministic open-loop load generator for
// dfmd: arrivals fire on a fixed schedule derived from -rate,
// independent of how fast the server answers (so queueing delay shows
// up as latency, exactly like production traffic), and a seeded RNG
// draws each request either fresh or as a duplicate of an earlier one
// (-dup), exercising the server's singleflight and content-addressed
// cache paths on purpose.
//
// Usage:
//
//	dfmload [-addr URL | -selfserve | -cluster N] [-rate R] [-duration D]
//	        [-dup F] [-unique N] [-techniques a,b] [-seed N] [-timeout D]
//	        [-retries N] [-wait-ready D] [-bench]
//	        [-policy P] [-kill D] [-restart D]   (cluster mode)
//
// Cluster mode (-cluster N) starts N in-process dfmd backends behind
// an in-process dfmrouter and aims the load at the router. -kill D
// hard-kills backend n0 (listener and all live connections dropped) D
// after the load starts; -restart D brings a fresh dfmd up on the
// same port. That is the chaos experiment: an open-loop burst, a node
// dying mid-burst, and the router's failover path on the hook for
// every in-flight request. The report adds router counters
// (failovers, evictions, reinstatements) and the cluster-wide cache
// hit rate — the number that decides whether affinity routing is hit
// or hype versus round-robin.
//
// The report prints sent/ok/shed/failed counts, client-side
// p50/p95/p99/max end-to-end latency, and the server's own counters
// read from /metrics. With -bench the percentiles are also emitted as
// `go test -bench`-shaped lines so `benchjson` can fold a serving run
// into the benchmark trend record (`make servebench`,
// `make clusterbench`).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/server"
)

type loadCfg struct {
	addr       string
	selfserve  bool
	cluster    int
	policy     string
	kill       time.Duration
	restart    time.Duration
	rate       float64
	duration   time.Duration
	dup        float64
	unique     int
	techniques []string
	seed       int64
	timeout    time.Duration
	retries    int
	waitReady  time.Duration
	bench      bool
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:9517", "dfmd (or dfmrouter) base URL")
	selfserve := flag.Bool("selfserve", false, "start an in-process dfmd on an ephemeral port instead of dialing -addr")
	cluster := flag.Int("cluster", 0, "start N in-process dfmd backends behind an in-process dfmrouter")
	policy := flag.String("policy", "affinity", "cluster routing policy: affinity, least-loaded, or round-robin")
	kill := flag.Duration("kill", 0, "cluster mode: hard-kill backend n0 this long after the load starts (0 = never)")
	restart := flag.Duration("restart", 0, "cluster mode: restart the killed backend this long after the load starts (0 = never)")
	rate := flag.Float64("rate", 50, "open-loop arrival rate, requests/second")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	dup := flag.Float64("dup", 0.5, "fraction of requests that duplicate an earlier one")
	unique := flag.Int("unique", 16, "distinct workload seeds to draw from")
	techniques := flag.String("techniques", "sraf", "comma-separated techniques to request")
	seed := flag.Int64("seed", 1, "generator seed (same seed, same request stream)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	retries := flag.Int("retries", 0, "client-side retries per request (client.EvalWithRetry)")
	waitReady := flag.Duration("wait-ready", 10*time.Second, "poll /healthz this long for the server to come up")
	bench := flag.Bool("bench", false, "emit benchmark-format result lines for benchjson")
	flag.Parse()

	cfg := loadCfg{
		addr: *addr, selfserve: *selfserve, cluster: *cluster,
		policy: *policy, kill: *kill, restart: *restart,
		rate: *rate, duration: *duration, dup: *dup, unique: *unique,
		techniques: strings.Split(*techniques, ","), seed: *seed,
		timeout: *timeout, retries: *retries, waitReady: *waitReady,
		bench: *bench,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dfmload:", err)
		os.Exit(1)
	}
}

func run(cfg loadCfg) error {
	if cfg.rate <= 0 || cfg.duration <= 0 {
		return fmt.Errorf("need positive -rate and -duration")
	}
	var cl *clusterHarness
	switch {
	case cfg.cluster > 0:
		var err error
		cl, err = startCluster(cfg.cluster, cfg.policy)
		if err != nil {
			return err
		}
		defer cl.stop()
		cfg.addr = cl.routerURL
	case cfg.selfserve:
		stop, url, err := startInProcess()
		if err != nil {
			return err
		}
		defer stop()
		cfg.addr = url
	}
	c := client.New(cfg.addr, nil)

	// Readiness: a cold dfmd (or one still binding) answers within
	// the wait-ready budget; the clock starts only once it does.
	readyCtx, cancel := context.WithTimeout(context.Background(), cfg.waitReady)
	defer cancel()
	for {
		if err := c.Healthz(readyCtx); err == nil {
			break
		}
		select {
		case <-readyCtx.Done():
			return fmt.Errorf("server at %s not ready within %v", cfg.addr, cfg.waitReady)
		case <-time.After(100 * time.Millisecond):
		}
	}

	// Deterministic request stream: every arrival is drawn up front.
	rng := rand.New(rand.NewSource(cfg.seed))
	total := int(cfg.rate * cfg.duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / cfg.rate)
	reqs := make([]server.JobRequest, total)
	var used []server.JobRequest
	for i := range reqs {
		if len(used) > 0 && rng.Float64() < cfg.dup {
			reqs[i] = used[rng.Intn(len(used))]
		} else {
			reqs[i] = server.JobRequest{
				Technique: cfg.techniques[rng.Intn(len(cfg.techniques))],
				Seed:      cfg.seed + int64(rng.Intn(cfg.unique)),
			}
			used = append(used, reqs[i])
		}
	}

	var before server.Stats
	if cl == nil {
		var err error
		before, _, err = c.Metrics(context.Background())
		if err != nil {
			return fmt.Errorf("metrics before run: %w", err)
		}
	}

	// One shared retry policy: the same battle-tested backoff loop
	// the router uses internally, seeded for a reproducible schedule.
	retryPolicy := client.NewRetryPolicy(cfg.retries+1, cfg.seed)

	type outcome struct {
		lat    time.Duration
		state  string // ok | shed | draining | failed
		cached bool
		dedup  bool
	}
	outs := make([]outcome, total)
	var wg sync.WaitGroup
	start := time.Now()
	if cl != nil {
		cl.schedule(start, cfg.kill, cfg.restart)
	}
	for i := range reqs {
		// Open loop: fire at the scheduled instant no matter how many
		// responses are still outstanding.
		if sleep := start.Add(time.Duration(i) * interval).Sub(time.Now()); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
			defer cancel()
			t0 := time.Now()
			st, err := c.EvalWithRetry(ctx, reqs[i], retryPolicy)
			lat := time.Since(t0)
			switch {
			case err == nil && st.State == server.StateDone:
				outs[i] = outcome{lat: lat, state: "ok", cached: st.Cached, dedup: st.Deduped}
			case isOverloaded(err):
				outs[i] = outcome{lat: lat, state: "shed"}
			case errors.Is(err, client.ErrDraining):
				outs[i] = outcome{lat: lat, state: "draining"}
			default:
				outs[i] = outcome{lat: lat, state: "failed"}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var ok, shed, failed, cached, dedup int
	var lats []time.Duration
	for _, o := range outs {
		switch o.state {
		case "ok":
			ok++
			lats = append(lats, o.lat)
			if o.cached {
				cached++
			}
			if o.dedup {
				dedup++
			}
		case "shed":
			shed++
		default:
			failed++
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(q*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}

	fmt.Printf("dfmload: %d requests over %.1fs (open-loop %.1f/s, dup %.0f%%, %d unique): %d ok, %d shed, %d failed\n",
		total, elapsed.Seconds(), cfg.rate, 100*cfg.dup, cfg.unique, ok, shed, failed)
	if ok > 0 {
		fmt.Printf("client e2e latency: p50 %v  p95 %v  p99 %v  max %v\n",
			pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
		fmt.Printf("served from: %d cache hits, %d deduped in-flight, %d fresh evaluations (client view)\n",
			cached, dedup, ok-cached-dedup)
	}

	benchName := "Serve"
	var hitPermil int64 = -1
	if cl != nil {
		benchName = "Cluster" + cl.benchName
		hitPermil = cl.report()
	} else {
		after, _, err := c.Metrics(context.Background())
		if err != nil {
			return fmt.Errorf("metrics after run: %w", err)
		}
		fmt.Printf("server counters (this run): admitted=%d shed=%d deduped=%d cacheHits=%d cacheMisses=%d completed=%d failed=%d\n",
			after.Admitted-before.Admitted, after.Shed-before.Shed,
			after.Deduped-before.Deduped, after.CacheHits-before.CacheHits,
			after.CacheMisses-before.CacheMisses, after.Completed-before.Completed,
			after.Failed-before.Failed)
	}
	fmt.Printf("sustained throughput: %.1f ok/s\n", float64(ok)/elapsed.Seconds())

	if cfg.bench && ok > 0 {
		// benchjson-parseable lines: iterations = completed requests,
		// ns/op = the percentile (or mean inter-completion time for
		// the throughput line).
		fmt.Printf("Benchmark%sE2Ep50 \t%8d\t%12.0f ns/op\n", benchName, ok, float64(pct(0.50)))
		fmt.Printf("Benchmark%sE2Ep95 \t%8d\t%12.0f ns/op\n", benchName, ok, float64(pct(0.95)))
		fmt.Printf("Benchmark%sE2Ep99 \t%8d\t%12.0f ns/op\n", benchName, ok, float64(pct(0.99)))
		fmt.Printf("Benchmark%sThroughput \t%8d\t%12.0f ns/op\n", benchName, ok, float64(elapsed)/float64(ok))
		if hitPermil >= 0 {
			// Cluster-wide cache hit rate in permil (hits per 1000
			// admissions across all backends) and the failed-request
			// count — the two headline numbers of the chaos run.
			fmt.Printf("Benchmark%sCacheHitPermil \t%8d\t%12.0f ns/op\n", benchName, ok, float64(hitPermil))
			fmt.Printf("Benchmark%sFailedReqs \t%8d\t%12.0f ns/op\n", benchName, total, float64(failed))
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d requests failed", failed)
	}
	return nil
}

func isOverloaded(err error) bool {
	var ov *client.Overloaded
	return errors.As(err, &ov)
}

// startInProcess runs a dfmd instance inside this process on an
// ephemeral port — no external server to manage for quick runs.
func startInProcess() (stop func(), url string, err error) {
	obs.SetEnabled(true)
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // closed on stop
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		hs.Close()
	}, "http://" + ln.Addr().String(), nil
}

// backendProc is one in-process dfmd "node": its server, HTTP
// front, and the fixed address it must come back on after a kill.
// The mutex covers srv/hs handle swaps: the chaos timers replace them
// from their own goroutines while the reporter reads them.
type backendProc struct {
	addr string

	mu  sync.Mutex
	srv *server.Server
	hs  *http.Server
}

func (b *backendProc) start() error {
	ln, err := net.Listen("tcp", b.addr)
	if err != nil {
		return err
	}
	srv := server.New(server.Config{})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // closed on kill/stop
	b.mu.Lock()
	b.srv, b.hs = srv, hs
	b.mu.Unlock()
	return nil
}

func (b *backendProc) handles() (*server.Server, *http.Server) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.srv, b.hs
}

// kill is abrupt: the listener and every live connection drop with a
// reset, exactly what a crashed process looks like to the router.
// The evaluation pool is then reaped so the dead node leaks nothing.
func (b *backendProc) kill() server.Stats {
	srv, hs := b.handles()
	st := srv.Stats()
	hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	return st
}

// clusterHarness is the in-process chaos rig: N dfmd backends, one
// dfmrouter, and a kill/restart schedule for backend n0.
type clusterHarness struct {
	backends  []*backendProc
	rt        *router.Router
	rhs       *http.Server
	routerURL string
	benchName string

	mu      sync.Mutex
	retired []server.Stats // stats captured from killed backend instances
	timers  []*time.Timer
}

func startCluster(n int, policy string) (*clusterHarness, error) {
	obs.SetEnabled(true)
	cl := &clusterHarness{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addr := ln.Addr().String()
		ln.Close()
		b := &backendProc{addr: addr}
		if err := b.start(); err != nil {
			return nil, err
		}
		cl.backends = append(cl.backends, b)
		urls[i] = "http://" + addr
	}
	rt, err := router.New(router.Config{
		Backends: urls,
		Policy:   policy,
		// Snappy chaos settings: evict within ~300ms of a node dying,
		// reinstate within ~300ms of it proving recovery. The breaker
		// reacts faster still on the data path.
		CheckInterval:   100 * time.Millisecond,
		CheckTimeout:    500 * time.Millisecond,
		FailAfter:       2,
		RiseAfter:       2,
		BreakerCooldown: 500 * time.Millisecond,
		MaxAttempts:     4,
		AttemptTimeout:  10 * time.Second,
		Logf:            func(f string, a ...any) { fmt.Printf("  ["+f+"]\n", a...) },
	})
	if err != nil {
		return nil, err
	}
	cl.rt = rt
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	cl.rhs = &http.Server{Handler: rt.Handler()}
	go cl.rhs.Serve(ln) //nolint:errcheck // closed on stop
	cl.routerURL = "http://" + ln.Addr().String()
	switch rt.Stats().Policy {
	case "affinity":
		cl.benchName = "Affinity"
	case "least-loaded":
		cl.benchName = "LeastLoaded"
	default:
		cl.benchName = "RoundRobin"
	}
	fmt.Printf("cluster: %d backends behind %s router at %s\n", n, rt.Stats().Policy, cl.routerURL)
	return cl, nil
}

// schedule arms the chaos timers relative to the load start.
func (cl *clusterHarness) schedule(start time.Time, kill, restart time.Duration) {
	if kill <= 0 {
		return
	}
	cl.timers = append(cl.timers, time.AfterFunc(time.Until(start.Add(kill)), func() {
		st := cl.backends[0].kill()
		cl.mu.Lock()
		cl.retired = append(cl.retired, st)
		cl.mu.Unlock()
		fmt.Printf("  [chaos: backend n0 killed at +%v]\n", kill)
	}))
	if restart > kill {
		cl.timers = append(cl.timers, time.AfterFunc(time.Until(start.Add(restart)), func() {
			if err := cl.backends[0].start(); err != nil {
				fmt.Printf("  [chaos: backend n0 restart FAILED: %v]\n", err)
				return
			}
			fmt.Printf("  [chaos: backend n0 restarted at +%v]\n", restart)
		}))
	}
}

// report prints the cluster-side accounting and returns the
// cluster-wide cache hit rate in permil.
func (cl *clusterHarness) report() int64 {
	cl.mu.Lock()
	sums := append([]server.Stats(nil), cl.retired...)
	cl.mu.Unlock()
	for _, b := range cl.backends {
		srv, _ := b.handles()
		sums = append(sums, srv.Stats())
	}
	var hits, misses, deduped, completed, evals int64
	for _, s := range sums {
		hits += s.CacheHits
		misses += s.CacheMisses
		deduped += s.Deduped
		completed += s.Completed
		evals += s.CacheMisses
	}
	rs := cl.rt.Stats()
	fmt.Printf("cluster backends: cacheHits=%d cacheMisses=%d deduped=%d completed=%d (fresh evaluations=%d)\n",
		hits, misses, deduped, completed, evals)
	var permil int64
	if hits+misses > 0 {
		permil = hits * 1000 / (hits + misses)
	}
	fmt.Printf("cluster-wide cache hit rate: %.1f%% (policy=%s)\n",
		float64(permil)/10, rs.Policy)
	fmt.Printf("router: ok=%d failed=%d retries=%d failovers=%d breakerBlocked=%d budgetDenied=%d\n",
		rs.OK, rs.Failed, rs.Retries, rs.Failovers, rs.BreakerBlocked, rs.BudgetDenied)
	for _, b := range rs.Backends {
		fmt.Printf("  backend %s: up=%v picks=%d oks=%d fails=%d sheds=%d evictions=%d reinstates=%d\n",
			b.Name, b.Up, b.Picks, b.OKs, b.Fails, b.Sheds, b.Evictions, b.Reinstates)
	}
	return permil
}

func (cl *clusterHarness) stop() {
	for _, t := range cl.timers {
		t.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl.rt.Shutdown(ctx)
	cl.rhs.Close()
	// A killed-and-not-restarted backend was already shut down by
	// kill(); Shutdown and Close are both idempotent, so sweep all.
	for _, b := range cl.backends {
		srv, hs := b.handles()
		srv.Shutdown(ctx)
		hs.Close()
	}
}
