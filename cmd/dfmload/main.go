// Command dfmload is a deterministic open-loop load generator for
// dfmd: arrivals fire on a fixed schedule derived from -rate,
// independent of how fast the server answers (so queueing delay shows
// up as latency, exactly like production traffic), and a seeded RNG
// draws each request either fresh or as a duplicate of an earlier one
// (-dup), exercising the server's singleflight and content-addressed
// cache paths on purpose.
//
// Usage:
//
//	dfmload [-addr URL | -selfserve] [-rate R] [-duration D] [-dup F]
//	        [-unique N] [-techniques a,b] [-seed N] [-timeout D]
//	        [-wait-ready D] [-bench]
//
// The report prints sent/ok/shed/failed counts, client-side
// p50/p95/p99/max end-to-end latency, and the server's own counters
// (admitted, deduped, cache hits) read from /metrics. With -bench the
// percentiles are also emitted as `go test -bench`-shaped lines so
// `benchjson` can fold a serving run into the benchmark trend record
// (`make servebench`).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:9517", "dfmd base URL")
	selfserve := flag.Bool("selfserve", false, "start an in-process dfmd on an ephemeral port instead of dialing -addr")
	rate := flag.Float64("rate", 50, "open-loop arrival rate, requests/second")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	dup := flag.Float64("dup", 0.5, "fraction of requests that duplicate an earlier one")
	unique := flag.Int("unique", 16, "distinct workload seeds to draw from")
	techniques := flag.String("techniques", "sraf", "comma-separated techniques to request")
	seed := flag.Int64("seed", 1, "generator seed (same seed, same request stream)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	waitReady := flag.Duration("wait-ready", 10*time.Second, "poll /healthz this long for the server to come up")
	bench := flag.Bool("bench", false, "emit benchmark-format result lines for benchjson")
	flag.Parse()

	if err := run(*addr, *selfserve, *rate, *duration, *dup, *unique,
		strings.Split(*techniques, ","), *seed, *timeout, *waitReady, *bench); err != nil {
		fmt.Fprintln(os.Stderr, "dfmload:", err)
		os.Exit(1)
	}
}

func run(addr string, selfserve bool, rate float64, duration time.Duration,
	dup float64, unique int, techniques []string, seed int64,
	timeout, waitReady time.Duration, bench bool) error {
	if rate <= 0 || duration <= 0 {
		return fmt.Errorf("need positive -rate and -duration")
	}
	if selfserve {
		stop, url, err := startInProcess()
		if err != nil {
			return err
		}
		defer stop()
		addr = url
	}
	c := client.New(addr, nil)

	// Readiness: a cold dfmd (or one still binding) answers within
	// the wait-ready budget; the clock starts only once it does.
	readyCtx, cancel := context.WithTimeout(context.Background(), waitReady)
	defer cancel()
	for {
		if err := c.Healthz(readyCtx); err == nil {
			break
		}
		select {
		case <-readyCtx.Done():
			return fmt.Errorf("server at %s not ready within %v", addr, waitReady)
		case <-time.After(100 * time.Millisecond):
		}
	}

	// Deterministic request stream: every arrival is drawn up front.
	rng := rand.New(rand.NewSource(seed))
	total := int(rate * duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	reqs := make([]server.JobRequest, total)
	var used []server.JobRequest
	for i := range reqs {
		if len(used) > 0 && rng.Float64() < dup {
			reqs[i] = used[rng.Intn(len(used))]
		} else {
			reqs[i] = server.JobRequest{
				Technique: techniques[rng.Intn(len(techniques))],
				Seed:      seed + int64(rng.Intn(unique)),
			}
			used = append(used, reqs[i])
		}
	}

	before, _, err := c.Metrics(context.Background())
	if err != nil {
		return fmt.Errorf("metrics before run: %w", err)
	}

	type outcome struct {
		lat    time.Duration
		state  string // ok | shed | draining | failed
		cached bool
		dedup  bool
	}
	outs := make([]outcome, total)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range reqs {
		// Open loop: fire at the scheduled instant no matter how many
		// responses are still outstanding.
		if sleep := start.Add(time.Duration(i) * interval).Sub(time.Now()); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			t0 := time.Now()
			st, err := c.Eval(ctx, reqs[i])
			lat := time.Since(t0)
			switch {
			case err == nil && st.State == server.StateDone:
				outs[i] = outcome{lat: lat, state: "ok", cached: st.Cached, dedup: st.Deduped}
			case isOverloaded(err):
				outs[i] = outcome{lat: lat, state: "shed"}
			case errors.Is(err, client.ErrDraining):
				outs[i] = outcome{lat: lat, state: "draining"}
			default:
				outs[i] = outcome{lat: lat, state: "failed"}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var ok, shed, failed, cached, dedup int
	var lats []time.Duration
	for _, o := range outs {
		switch o.state {
		case "ok":
			ok++
			lats = append(lats, o.lat)
			if o.cached {
				cached++
			}
			if o.dedup {
				dedup++
			}
		case "shed":
			shed++
		default:
			failed++
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(q*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}

	fmt.Printf("dfmload: %d requests over %.1fs (open-loop %.1f/s, dup %.0f%%, %d unique): %d ok, %d shed, %d failed\n",
		total, elapsed.Seconds(), rate, 100*dup, unique, ok, shed, failed)
	if ok > 0 {
		fmt.Printf("client e2e latency: p50 %v  p95 %v  p99 %v  max %v\n",
			pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
		fmt.Printf("served from: %d cache hits, %d deduped in-flight, %d fresh evaluations (client view)\n",
			cached, dedup, ok-cached-dedup)
	}
	after, _, err := c.Metrics(context.Background())
	if err != nil {
		return fmt.Errorf("metrics after run: %w", err)
	}
	fmt.Printf("server counters (this run): admitted=%d shed=%d deduped=%d cacheHits=%d cacheMisses=%d completed=%d failed=%d\n",
		after.Admitted-before.Admitted, after.Shed-before.Shed,
		after.Deduped-before.Deduped, after.CacheHits-before.CacheHits,
		after.CacheMisses-before.CacheMisses, after.Completed-before.Completed,
		after.Failed-before.Failed)
	fmt.Printf("sustained throughput: %.1f ok/s\n", float64(ok)/elapsed.Seconds())

	if bench && ok > 0 {
		// benchjson-parseable lines: iterations = completed requests,
		// ns/op = the percentile (or mean inter-completion time for
		// the throughput line).
		fmt.Printf("BenchmarkServeE2Ep50 \t%8d\t%12.0f ns/op\n", ok, float64(pct(0.50)))
		fmt.Printf("BenchmarkServeE2Ep95 \t%8d\t%12.0f ns/op\n", ok, float64(pct(0.95)))
		fmt.Printf("BenchmarkServeE2Ep99 \t%8d\t%12.0f ns/op\n", ok, float64(pct(0.99)))
		fmt.Printf("BenchmarkServeThroughput \t%8d\t%12.0f ns/op\n", ok, float64(elapsed)/float64(ok))
	}
	if failed > 0 {
		return fmt.Errorf("%d requests failed", failed)
	}
	return nil
}

func isOverloaded(err error) bool {
	var ov *client.Overloaded
	return errors.As(err, &ov)
}

// startInProcess runs a dfmd instance inside this process on an
// ephemeral port — no external server to manage for quick runs.
func startInProcess() (stop func(), url string, err error) {
	obs.SetEnabled(true)
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // closed on stop
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		hs.Close()
	}, "http://" + ln.Addr().String(), nil
}
