// Command lithosim simulates the printing of one layer of a layout:
// reports CD at the layout center, hotspots at nominal and stressed
// conditions, and optionally the focus-exposure window of the most
// central feature.
//
// Usage:
//
//	lithosim [-layer metal1] [-defocus 0] [-dose 1.0] layout.txt
//	lithosim -lines -w 70 -s 70 -n 7        (line/space test pattern)
//
// -metrics FILE enables the observability registry and writes its
// JSON snapshot (raster-cache hits/misses, blur passes, buffer-pool
// and row-dispatch counters) to FILE at exit, "-" meaning stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/metrology"
	"repro/internal/obs"
	"repro/internal/tech"
)

func main() {
	layerName := flag.String("layer", "metal1", "layer to simulate")
	defocus := flag.Float64("defocus", 0, "defocus, nm")
	dose := flag.Float64("dose", 1.0, "relative dose")
	lines := flag.Bool("lines", false, "simulate a line/space pattern instead of a file")
	w := flag.Int64("w", 70, "line width for -lines")
	s := flag.Int64("s", 70, "line space for -lines")
	n := flag.Int("n", 7, "line count for -lines")
	fem := flag.Bool("fem", false, "print the focus-exposure matrix of the center feature")
	metro := flag.Bool("metro", false, "generate and execute a design-driven metrology plan")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	metrics := flag.String("metrics", "", "write the metrics snapshot to this file at exit (\"-\" = stdout)")
	flag.Parse()

	if *metrics != "" {
		obs.SetEnabled(true)
		defer func() {
			if err := obs.DumpDefault(*metrics); err != nil {
				fmt.Fprintln(os.Stderr, "lithosim:", err)
			}
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lithosim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lithosim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lithosim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently freed objects for an accurate live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lithosim:", err)
			}
		}()
	}

	t := tech.N45()
	var rs []geom.Rect
	name := ""
	switch {
	case *lines:
		cell := layout.LineSpace(t, tech.Metal1, *w, *s, 3000, *n)
		rs = cell.LayerRects(tech.Metal1)
		name = cell.Name
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "lithosim:", err)
			os.Exit(1)
		}
		defer f.Close()
		l, err := layout.Read(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lithosim:", err)
			os.Exit(1)
		}
		if l.Tech != nil {
			t = l.Tech
		}
		layer, err := tech.ParseLayer(*layerName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lithosim:", err)
			os.Exit(1)
		}
		rs = layout.ByLayer(l.Flatten())[layer]
		name = l.Top.Name + "/" + *layerName
	default:
		fmt.Fprintln(os.Stderr, "usage: lithosim [-layer L] layout.txt | lithosim -lines")
		os.Exit(2)
	}
	if len(rs) == 0 {
		fmt.Fprintln(os.Stderr, "lithosim: no geometry on layer")
		os.Exit(1)
	}

	cond := litho.Condition{Defocus: *defocus, Dose: *dose}
	bb := geom.BBoxOf(rs)
	fmt.Printf("%s: %d rects, extent %v, condition f=%.0fnm dose=%.2f\n",
		name, len(rs), bb, cond.Defocus, cond.Dose)

	// CD at the center of the nearest feature to the extent center.
	c := bb.Center()
	img := litho.Simulate(rs, geom.R(c.X-1000, c.Y-1000, c.X+1000, c.Y+1000).Intersect(bb.Bloat(200)), t.Optics, cond)
	cx, cy := float64(c.X), float64(c.Y)
	if cd, ok := img.CDAt(cx, cy, true); ok {
		fmt.Printf("center CD (horizontal cut): %.1f nm\n", cd)
	} else if cd, ok := img.CDAt(cx, cy, false); ok {
		fmt.Printf("center CD (vertical cut): %.1f nm\n", cd)
	} else {
		fmt.Println("center point does not print")
	}

	hs := litho.ScanLayer(rs, t, tech.Metal1, cond, 0, 0)
	fmt.Printf("hotspots: %d\n", len(hs))
	for i, h := range hs {
		if i >= 15 {
			fmt.Printf("  ... %d more\n", len(hs)-15)
			break
		}
		fmt.Println(" ", h)
	}

	if *metro {
		plan := metrology.GeneratePlan(rs, tech.Metal1, metrology.DefaultPlanOpts())
		full := litho.Simulate(rs, bb.Bloat(200), t.Optics, cond)
		ms := metrology.Execute(plan, full, metrology.DefaultTool(), 1)
		st := metrology.Summarize(ms)
		fmt.Println(plan)
		for _, k := range []metrology.SiteKind{metrology.LineWidth, metrology.SpaceWidth, metrology.LineEnd} {
			s := st[k]
			fmt.Printf("  %-8s n=%-4d valid=%-4d meanErr=%+.2fnm sigma=%.2fnm\n",
				k, s.N, s.Valid, s.MeanErr, s.Sigma)
		}
	}

	if *fem {
		defocusList := []float64{0, 40, 80, 120, 160}
		doseList := []float64{0.92, 0.96, 1.0, 1.04, 1.08}
		cd0, ok := litho.Simulate(rs, bb.Bloat(200), t.Optics, litho.Nominal).CDAt(cx, cy, true)
		if !ok {
			fmt.Println("fem: center feature does not print at nominal")
			return
		}
		spec := litho.CDSpec{Target: cd0, Tol: 0.10}
		pts := litho.FEMatrix(rs, bb.Bloat(200), t.Optics, cx, cy, true, spec, defocusList, doseList)
		fmt.Printf("focus-exposure matrix (target %.1fnm +-10%%):\n      ", cd0)
		for _, d := range doseList {
			fmt.Printf("%7.2f", d)
		}
		fmt.Println()
		i := 0
		for _, f := range defocusList {
			fmt.Printf("f%4.0f ", f)
			for range doseList {
				p := pts[i]
				mark := " "
				if p.OK {
					mark = "*"
				}
				fmt.Printf("%6.1f%s", p.CD, mark)
				i++
			}
			fmt.Println()
		}
		fmt.Printf("depth of focus: %.0f nm\n", litho.DepthOfFocus(pts, defocusList))
	}
}
